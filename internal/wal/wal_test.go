package wal

import (
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func TestRecordRoundtrip(t *testing.T) {
	recs := []Record{
		{LSN: 1, Op: OpValue, Key: 0, Val: 0},
		{LSN: 2, Op: OpValue, Key: -42, Val: -123.456},
		{LSN: 3, Op: OpWidth, Key: 1 << 40, Val: 0.5},
		{LSN: 4, Op: OpSub, Key: 7},
		{LSN: 5, Op: OpUnsub, Key: -7},
		{LSN: 6, Op: OpSnapshot, Key: 99},
		{LSN: math.MaxUint64, Op: OpValue, Key: math.MaxInt64, Val: math.MaxFloat64},
	}
	var buf []byte
	for _, r := range recs {
		buf = appendRecord(buf, r)
	}
	off := 0
	for i, want := range recs {
		got, n, err := decodeRecord(buf[off:])
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("record %d: got %+v want %+v", i, got, want)
		}
		off += n
	}
	if off != len(buf) {
		t.Fatalf("consumed %d of %d bytes", off, len(buf))
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	valid := appendRecord(nil, Record{LSN: 5, Op: OpValue, Key: 3, Val: 1.5})
	if _, _, err := decodeRecord(valid); err != nil {
		t.Fatalf("valid record rejected: %v", err)
	}
	// Every single-byte flip must be caught by the checksum or framing.
	for i := range valid {
		mut := append([]byte(nil), valid...)
		mut[i] ^= 0x40
		if r, _, err := decodeRecord(mut); err == nil && r == (Record{LSN: 5, Op: OpValue, Key: 3, Val: 1.5}) {
			t.Fatalf("flip at byte %d decoded to the original record", i)
		}
	}
	// Every truncation is a torn frame.
	for n := 0; n < len(valid); n++ {
		if _, _, err := decodeRecord(valid[:n]); err == nil {
			t.Fatalf("truncation to %d bytes decoded", n)
		}
	}
	// Semantically invalid fields are rejected even with a valid checksum.
	for _, r := range []Record{
		{Op: OpValue, Key: 1, Val: math.NaN()},
		{Op: OpValue, Key: 1, Val: math.Inf(1)},
		{Op: OpWidth, Key: 1, Val: -1},
		{Op: OpWidth, Key: 1, Val: math.NaN()},
		{Op: OpSnapshot, Key: -1},
		{Op: Op(200), Key: 1},
	} {
		if _, _, err := decodeRecord(appendRecord(nil, r)); err == nil {
			t.Fatalf("invalid record %+v decoded", r)
		}
	}
}

func openTest(t *testing.T, opts Options) *Log {
	t.Helper()
	if opts.Dir == "" {
		opts.Dir = t.TempDir()
	}
	if opts.Shards == 0 {
		opts.Shards = 2
	}
	l, err := Open(opts)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	return l
}

func TestAppendScanRoundtrip(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, Options{Dir: dir, Shards: 3, Policy: FsyncAlways})
	var want []Record
	for i := 0; i < 50; i++ {
		r := Record{Op: OpValue, Key: int64(i), Val: float64(i) / 3}
		if i%5 == 0 {
			r = Record{Op: OpSub, Key: int64(i)}
		}
		if err := l.Append(i%3, r); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		r.LSN = l.LastLSN()
		want = append(want, r)
	}
	if got := l.Records(); got != 50 {
		t.Fatalf("Records() = %d, want 50", got)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	res, err := ScanDir(OSFS, dir)
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	if len(res.Records) != len(want) {
		t.Fatalf("recovered %d records, want %d", len(res.Records), len(want))
	}
	for i, r := range res.Records {
		if r != want[i] {
			t.Fatalf("record %d: got %+v want %+v", i, r, want[i])
		}
	}
	if res.MaxLSN != want[len(want)-1].LSN {
		t.Fatalf("MaxLSN = %d, want %d", res.MaxLSN, want[len(want)-1].LSN)
	}
	if res.Truncated != 0 {
		t.Fatalf("Truncated = %d on a clean log", res.Truncated)
	}
}

func TestScanTruncatesTornTail(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, Options{Dir: dir, Shards: 1, Policy: FsyncAlways})
	for i := 0; i < 10; i++ {
		if err := l.Append(0, Record{Op: OpWidth, Key: int64(i), Val: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, FileName(0))
	// Append garbage simulating a torn record.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0x10, 0x00, 0x00, 0x00, 0xde, 0xad})
	f.Close()
	res, err := ScanDir(OSFS, dir)
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	if res.Truncated != 1 {
		t.Fatalf("Truncated = %d, want 1", res.Truncated)
	}
	if len(res.Records) != 10 {
		t.Fatalf("recovered %d records, want 10", len(res.Records))
	}
	// The file was cut back to its valid prefix: a second scan is clean and
	// a reopened log appends from the clean boundary.
	l2 := openTest(t, Options{Dir: dir, Shards: 1, Policy: FsyncAlways, StartLSN: res.MaxLSN})
	if err := l2.Append(0, Record{Op: OpSub, Key: 77}); err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	res2, err := ScanDir(OSFS, dir)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Truncated != 0 {
		t.Fatalf("second scan Truncated = %d", res2.Truncated)
	}
	if len(res2.Records) != 11 || res2.Records[10].Key != 77 {
		t.Fatalf("post-truncation append lost: %d records", len(res2.Records))
	}
}

func TestGroupCommitSharesFsyncs(t *testing.T) {
	ffs := NewFaultFS(OSFS)
	dir := t.TempDir()
	l := openTest(t, Options{Dir: dir, Shards: 1, Policy: FsyncAlways, FS: ffs})
	const writers, per = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := l.Append(0, Record{Op: OpValue, Key: int64(w*per + i), Val: 1}); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	syncs := ffs.Syncs()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	res, err := ScanDir(OSFS, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != writers*per {
		t.Fatalf("recovered %d records, want %d", len(res.Records), writers*per)
	}
	// Concurrent commits board shared batches: far fewer fsyncs than appends.
	if syncs >= writers*per {
		t.Fatalf("%d fsyncs for %d appends: group commit not batching", syncs, writers*per)
	}
}

func TestIntervalPolicyFlushesInBackground(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, Options{Dir: dir, Shards: 1, Policy: FsyncInterval, Interval: time.Millisecond})
	if err := l.Append(0, Record{Op: OpValue, Key: 1, Val: 2}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		data, _ := os.ReadFile(filepath.Join(dir, FileName(0)))
		if len(data) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("background flusher never wrote the record")
		}
		time.Sleep(time.Millisecond)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestStickyFsyncError(t *testing.T) {
	ffs := NewFaultFS(OSFS)
	l := openTest(t, Options{Shards: 1, Policy: FsyncAlways, FS: ffs})
	boom := errors.New("boom")
	ffs.FailSyncs(boom)
	if err := l.Append(0, Record{Op: OpValue, Key: 1, Val: 1}); !errors.Is(err, boom) {
		t.Fatalf("append under failing fsync: %v", err)
	}
	ffs.FailSyncs(nil)
	// The failure is sticky: later appends refuse rather than silently
	// resuming with a hole in the log.
	if err := l.Append(0, Record{Op: OpValue, Key: 2, Val: 2}); !errors.Is(err, boom) {
		t.Fatalf("append after sticky failure: %v", err)
	}
	if err := l.Err(); !errors.Is(err, boom) {
		t.Fatalf("Err() = %v", err)
	}
	if err := l.Close(); !errors.Is(err, boom) {
		t.Fatalf("Close() = %v", err)
	}
}

func TestShortWriteRecoversPrefix(t *testing.T) {
	ffs := NewFaultFS(OSFS)
	dir := t.TempDir()
	l := openTest(t, Options{Dir: dir, Shards: 1, Policy: FsyncAlways, FS: ffs})
	for i := 0; i < 5; i++ {
		if err := l.Append(0, Record{Op: OpValue, Key: int64(i), Val: 1}); err != nil {
			t.Fatal(err)
		}
	}
	ffs.ShortWriteOnce(3) // tear the next record mid-frame
	if err := l.Append(0, Record{Op: OpValue, Key: 99, Val: 1}); err == nil {
		t.Fatal("torn append reported success")
	}
	res, err := ScanDir(OSFS, dir)
	if err != nil {
		t.Fatal(err)
	}
	if res.Truncated != 1 {
		t.Fatalf("Truncated = %d, want 1", res.Truncated)
	}
	if len(res.Records) != 5 {
		t.Fatalf("recovered %d records, want the 5 acked ones", len(res.Records))
	}
	l.Close()
}

func TestPowerCutAtEveryOffset(t *testing.T) {
	// Establish the full run's byte length, then replay it with the power
	// cut at a sweep of offsets: every cut must recover exactly the acked
	// prefix, never an error, never a phantom record.
	run := func(budget int64) (acked int, dir string) {
		ffs := NewFaultFS(OSFS)
		if budget >= 0 {
			ffs.CutPowerAfter(budget)
		}
		dir = t.TempDir()
		l, err := Open(Options{Dir: dir, Shards: 1, Policy: FsyncAlways, FS: ffs})
		if err != nil {
			return 0, dir
		}
		for i := 0; i < 20; i++ {
			if err := l.Append(0, Record{Op: OpWidth, Key: int64(i), Val: float64(i) + 0.5}); err != nil {
				break
			}
			acked++
		}
		l.Close()
		return acked, dir
	}
	_, full := run(-1)
	info, err := os.Stat(filepath.Join(full, FileName(0)))
	if err != nil {
		t.Fatal(err)
	}
	total := info.Size()
	for cut := int64(0); cut <= total; cut += 7 {
		acked, dir := run(cut)
		res, err := ScanDir(OSFS, dir)
		if err != nil {
			t.Fatalf("cut %d: scan: %v", cut, err)
		}
		if len(res.Records) < acked {
			t.Fatalf("cut %d: recovered %d records but %d were acked", cut, len(res.Records), acked)
		}
		for i, r := range res.Records {
			if r.Key != int64(i) {
				t.Fatalf("cut %d: record %d has key %d: not a prefix", cut, i, r.Key)
			}
		}
	}
}

func TestResetStampsSnapshotMarker(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, Options{Dir: dir, Shards: 2, Policy: FsyncAlways})
	for i := 0; i < 8; i++ {
		if err := l.Append(i%2, Record{Op: OpValue, Key: int64(i), Val: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Reset(41); err != nil {
		t.Fatalf("reset: %v", err)
	}
	if got := l.Records(); got != 0 {
		t.Fatalf("Records() = %d after reset", got)
	}
	if err := l.Append(0, Record{Op: OpSub, Key: 5}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	res, err := ScanDir(OSFS, dir)
	if err != nil {
		t.Fatal(err)
	}
	if res.SnapSeq != 41 {
		t.Fatalf("SnapSeq = %d, want 41", res.SnapSeq)
	}
	if len(res.Records) != 1 || res.Records[0].Op != OpSub || res.Records[0].Key != 5 {
		t.Fatalf("post-reset records = %+v", res.Records)
	}
}

func TestRewriteReplacesState(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, Options{Dir: dir, Shards: 2, Policy: FsyncAlways})
	for i := 0; i < 30; i++ {
		if err := l.Append(i%2, Record{Op: OpValue, Key: 1, Val: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	err := l.Rewrite(7, func(shard int) []Record {
		return []Record{
			{Op: OpValue, Key: int64(shard), Val: 100 + float64(shard)},
			{Op: OpWidth, Key: int64(shard), Val: 0.25},
		}
	})
	if err != nil {
		t.Fatalf("rewrite: %v", err)
	}
	if got := l.Records(); got != 4 {
		t.Fatalf("Records() = %d after rewrite, want 4", got)
	}
	// The swapped append handles keep working.
	if err := l.Append(1, Record{Op: OpUnsub, Key: 9}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	res, err := ScanDir(OSFS, dir)
	if err != nil {
		t.Fatal(err)
	}
	if res.SnapSeq != 7 {
		t.Fatalf("SnapSeq = %d, want 7", res.SnapSeq)
	}
	if len(res.Records) != 5 {
		t.Fatalf("recovered %d records, want 5", len(res.Records))
	}
	last := res.Records[4]
	if last.Op != OpUnsub || last.Key != 9 {
		t.Fatalf("post-rewrite append lost: %+v", last)
	}
}

func TestRewriteRenameFailureKeepsOldLog(t *testing.T) {
	ffs := NewFaultFS(OSFS)
	dir := t.TempDir()
	l := openTest(t, Options{Dir: dir, Shards: 1, Policy: FsyncAlways, FS: ffs})
	for i := 0; i < 5; i++ {
		if err := l.Append(0, Record{Op: OpValue, Key: int64(i), Val: 1}); err != nil {
			t.Fatal(err)
		}
	}
	boom := errors.New("rename blocked")
	ffs.FailRenames(boom)
	if err := l.Rewrite(3, func(int) []Record { return nil }); !errors.Is(err, boom) {
		t.Fatalf("rewrite under failing rename: %v", err)
	}
	res, err := ScanDir(OSFS, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 5 {
		t.Fatalf("old log damaged by failed rewrite: %d records", len(res.Records))
	}
	names, _ := OSFS.ReadDir(dir)
	for _, n := range names {
		if !IsLogName(n) {
			t.Fatalf("temp file %s left behind", n)
		}
	}
	l.Close()
}

func TestScanMergesShardCountChange(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, Options{Dir: dir, Shards: 4, Policy: FsyncAlways})
	for i := 0; i < 12; i++ {
		if err := l.Append(i%4, Record{Op: OpValue, Key: int64(i), Val: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Recovery reads all four files even if the next deployment uses one shard.
	res, err := ScanDir(OSFS, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 12 {
		t.Fatalf("recovered %d of 12 records across shard files", len(res.Records))
	}
	for i, r := range res.Records {
		if r.Key != int64(i) {
			t.Fatalf("LSN merge out of order at %d: key %d", i, r.Key)
		}
	}
}

func TestParsePolicy(t *testing.T) {
	for in, want := range map[string]Policy{
		"always": FsyncAlways, "interval": FsyncInterval, "none": FsyncNone, "": FsyncInterval,
	} {
		got, err := ParsePolicy(in)
		if err != nil || got != want {
			t.Fatalf("ParsePolicy(%q) = %v, %v", in, got, err)
		}
		if in != "" && got.String() != in {
			t.Fatalf("Policy(%v).String() = %q", got, got.String())
		}
	}
	if _, err := ParsePolicy("sometimes"); err == nil {
		t.Fatal("bad policy accepted")
	}
}

func TestMissingDirScansEmpty(t *testing.T) {
	res, err := ScanDir(OSFS, filepath.Join(t.TempDir(), "nope"))
	if err != nil {
		t.Fatalf("missing dir: %v", err)
	}
	if len(res.Records) != 0 || res.MaxLSN != 0 || res.SnapSeq != 0 {
		t.Fatalf("non-empty result from missing dir: %+v", res)
	}
}

func TestStageCommitSplit(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, Options{Dir: dir, Shards: 1, Policy: FsyncAlways})
	tok := l.Stage(0, Record{Op: OpValue, Key: 1, Val: 2}, Record{Op: OpWidth, Key: 1, Val: 0.5})
	if tok == 0 {
		t.Fatal("stage returned zero token")
	}
	if err := l.Commit(0, tok); err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(0, tok); err != nil { // idempotent re-commit
		t.Fatal(err)
	}
	if err := l.Commit(0, 0); err != nil { // zero token no-op
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	res, err := ScanDir(OSFS, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 2 || res.Records[0].LSN+1 != res.Records[1].LSN {
		t.Fatalf("staged pair mangled: %+v", res.Records)
	}
}

func TestFileNameFormat(t *testing.T) {
	if got := FileName(3); got != "wal-0003.log" {
		t.Fatalf("FileName(3) = %q", got)
	}
	if !IsLogName("wal-0003.log") || IsLogName("wal-0003.log.tmp") || IsLogName("snap-000001.gob") {
		t.Fatal("IsLogName misclassifies")
	}
	if fmt.Sprintf("%v", Op(77)) != "op(77)" {
		t.Fatal("unknown op String")
	}
}
