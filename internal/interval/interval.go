// Package interval implements the interval approximations to numeric values
// used throughout the adaptive-precision cache: an exact value V is
// approximated by a closed interval [Lo, Hi], valid as long as Lo <= V <= Hi.
//
// Precision is the reciprocal of the width (Olston/Loo/Widom, SIGMOD 2001,
// Section 2): a zero-width interval is an exact copy (infinite precision) and
// an infinite-width interval carries no information (zero precision).
package interval

import (
	"fmt"
	"math"
)

// Interval is a closed numeric interval [Lo, Hi]. The zero value is the
// degenerate interval [0, 0], an exact approximation of the value 0.
//
// Lo may be -Inf and Hi may be +Inf; such intervals are valid for every
// value and have zero precision.
type Interval struct {
	Lo float64
	Hi float64
}

// Exact returns the zero-width interval [v, v], an exact copy of v.
func Exact(v float64) Interval { return Interval{Lo: v, Hi: v} }

// Centered returns the interval of width w centered on v. A width of
// math.Inf(1) yields the unbounded interval.
func Centered(v, w float64) Interval {
	if math.IsInf(w, 1) {
		return Unbounded()
	}
	h := w / 2
	return Interval{Lo: v - h, Hi: v + h}
}

// Uncentered returns the interval [v-below, v+above]. It is used by the
// uncentered variant of the precision-setting algorithm (paper Section 4.5),
// where the lower and upper widths are adjusted independently.
func Uncentered(v, below, above float64) Interval {
	lo := v - below
	hi := v + above
	if math.IsInf(below, 1) {
		lo = math.Inf(-1)
	}
	if math.IsInf(above, 1) {
		hi = math.Inf(1)
	}
	return Interval{Lo: lo, Hi: hi}
}

// Unbounded returns the interval (-Inf, +Inf), which is valid for every value
// and has zero precision. It models "effectively uncached" approximations
// produced by the upper threshold lambda1.
func Unbounded() Interval {
	return Interval{Lo: math.Inf(-1), Hi: math.Inf(1)}
}

// Width returns Hi - Lo. It is +Inf for unbounded intervals and 0 for exact
// copies.
func (iv Interval) Width() float64 {
	if math.IsInf(iv.Hi, 1) || math.IsInf(iv.Lo, -1) {
		return math.Inf(1)
	}
	return iv.Hi - iv.Lo
}

// Precision returns 1/Width: +Inf for exact copies and 0 for unbounded
// intervals (paper Section 2).
func (iv Interval) Precision() float64 {
	w := iv.Width()
	if w == 0 {
		return math.Inf(1)
	}
	if math.IsInf(w, 1) {
		return 0
	}
	return 1 / w
}

// Valid reports whether v lies inside the interval, i.e. whether the interval
// is still a valid approximation of v (paper Section 1.1: Valid([L,H], V)).
func (iv Interval) Valid(v float64) bool { return iv.Lo <= v && v <= iv.Hi }

// Contains reports whether other lies entirely inside iv.
func (iv Interval) Contains(other Interval) bool {
	return iv.Lo <= other.Lo && other.Hi <= iv.Hi
}

// Center returns the midpoint of the interval. For unbounded or half-bounded
// intervals the result is NaN.
func (iv Interval) Center() float64 { return (iv.Lo + iv.Hi) / 2 }

// IsExact reports whether the interval has zero width.
func (iv Interval) IsExact() bool { return iv.Lo == iv.Hi }

// IsUnbounded reports whether either endpoint is infinite.
func (iv Interval) IsUnbounded() bool {
	return math.IsInf(iv.Lo, -1) || math.IsInf(iv.Hi, 1)
}

// Empty reports whether the interval contains no points (Lo > Hi). Empty
// intervals arise only from Intersect on disjoint inputs.
func (iv Interval) Empty() bool { return iv.Lo > iv.Hi }

// Add returns the Minkowski sum [a.Lo+b.Lo, a.Hi+b.Hi]. It is the tight bound
// on x+y for x in a, y in b, and is how SUM aggregate result intervals are
// combined (OW00-style bounded aggregation).
func (iv Interval) Add(other Interval) Interval {
	return Interval{Lo: iv.Lo + other.Lo, Hi: iv.Hi + other.Hi}
}

// Sub returns the tight bound on x-y for x in iv, y in other.
func (iv Interval) Sub(other Interval) Interval {
	return Interval{Lo: iv.Lo - other.Hi, Hi: iv.Hi - other.Lo}
}

// Scale returns the interval scaled by a nonnegative factor k.
func (iv Interval) Scale(k float64) Interval {
	return Interval{Lo: iv.Lo * k, Hi: iv.Hi * k}
}

// Max returns the tight bound on max(x, y) for x in iv, y in other.
func (iv Interval) Max(other Interval) Interval {
	return Interval{Lo: math.Max(iv.Lo, other.Lo), Hi: math.Max(iv.Hi, other.Hi)}
}

// Min returns the tight bound on min(x, y) for x in iv, y in other.
func (iv Interval) Min(other Interval) Interval {
	return Interval{Lo: math.Min(iv.Lo, other.Lo), Hi: math.Min(iv.Hi, other.Hi)}
}

// Intersect returns the overlap of the two intervals. The result is Empty if
// they are disjoint.
func (iv Interval) Intersect(other Interval) Interval {
	return Interval{Lo: math.Max(iv.Lo, other.Lo), Hi: math.Min(iv.Hi, other.Hi)}
}

// Union returns the smallest interval containing both inputs.
func (iv Interval) Union(other Interval) Interval {
	return Interval{Lo: math.Min(iv.Lo, other.Lo), Hi: math.Max(iv.Hi, other.Hi)}
}

// Clamp returns v limited to the interval.
func (iv Interval) Clamp(v float64) float64 {
	if v < iv.Lo {
		return iv.Lo
	}
	if v > iv.Hi {
		return iv.Hi
	}
	return v
}

// String renders the interval as "[lo, hi]" using %g formatting.
func (iv Interval) String() string {
	return fmt.Sprintf("[%g, %g]", iv.Lo, iv.Hi)
}

// SumAll returns the Minkowski sum of all intervals; the zero-length input
// yields the exact interval [0, 0].
func SumAll(ivs []Interval) Interval {
	out := Exact(0)
	for _, iv := range ivs {
		out = out.Add(iv)
	}
	return out
}

// MaxAll returns the tight bound on the maximum over all intervals. It panics
// on an empty input, for which no maximum exists.
func MaxAll(ivs []Interval) Interval {
	if len(ivs) == 0 {
		panic("interval: MaxAll of empty set")
	}
	out := ivs[0]
	for _, iv := range ivs[1:] {
		out = out.Max(iv)
	}
	return out
}

// MinAll returns the tight bound on the minimum over all intervals. It panics
// on an empty input.
func MinAll(ivs []Interval) Interval {
	if len(ivs) == 0 {
		panic("interval: MinAll of empty set")
	}
	out := ivs[0]
	for _, iv := range ivs[1:] {
		out = out.Min(iv)
	}
	return out
}
