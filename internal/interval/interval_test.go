package interval

import (
	"math"
	"testing"
	"testing/quick"
)

func TestExact(t *testing.T) {
	iv := Exact(5)
	if !iv.IsExact() {
		t.Fatalf("Exact(5).IsExact() = false")
	}
	if got := iv.Width(); got != 0 {
		t.Errorf("width = %g, want 0", got)
	}
	if !math.IsInf(iv.Precision(), 1) {
		t.Errorf("precision = %g, want +Inf", iv.Precision())
	}
	if !iv.Valid(5) {
		t.Errorf("Exact(5) should be valid for 5")
	}
	if iv.Valid(5.0000001) {
		t.Errorf("Exact(5) should not be valid for 5.0000001")
	}
}

func TestCentered(t *testing.T) {
	tests := []struct {
		v, w   float64
		lo, hi float64
	}{
		{0, 2, -1, 1},
		{10, 4, 8, 12},
		{-5, 1, -5.5, -4.5},
		{7, 0, 7, 7},
	}
	for _, tc := range tests {
		iv := Centered(tc.v, tc.w)
		if iv.Lo != tc.lo || iv.Hi != tc.hi {
			t.Errorf("Centered(%g, %g) = %v, want [%g, %g]", tc.v, tc.w, iv, tc.lo, tc.hi)
		}
	}
}

func TestCenteredInfiniteWidth(t *testing.T) {
	iv := Centered(42, math.Inf(1))
	if !iv.IsUnbounded() {
		t.Fatalf("Centered with Inf width should be unbounded, got %v", iv)
	}
	if !iv.Valid(1e300) || !iv.Valid(-1e300) {
		t.Errorf("unbounded interval should be valid for all values")
	}
	if iv.Precision() != 0 {
		t.Errorf("precision = %g, want 0", iv.Precision())
	}
}

func TestUncentered(t *testing.T) {
	iv := Uncentered(10, 2, 5)
	if iv.Lo != 8 || iv.Hi != 15 {
		t.Fatalf("Uncentered(10,2,5) = %v, want [8, 15]", iv)
	}
	half := Uncentered(10, math.Inf(1), 3)
	if !math.IsInf(half.Lo, -1) || half.Hi != 13 {
		t.Errorf("Uncentered(10,Inf,3) = %v, want [-Inf, 13]", half)
	}
	if half.Width() != math.Inf(1) {
		t.Errorf("half-bounded width = %g, want +Inf", half.Width())
	}
}

func TestUnbounded(t *testing.T) {
	iv := Unbounded()
	if got := iv.Width(); !math.IsInf(got, 1) {
		t.Errorf("width = %g, want +Inf", got)
	}
	if iv.IsExact() {
		t.Errorf("unbounded interval reported exact")
	}
}

func TestValidBoundaries(t *testing.T) {
	iv := Interval{Lo: 2, Hi: 4}
	for _, v := range []float64{2, 3, 4} {
		if !iv.Valid(v) {
			t.Errorf("Valid(%g) = false, want true (closed interval)", v)
		}
	}
	for _, v := range []float64{1.999, 4.001} {
		if iv.Valid(v) {
			t.Errorf("Valid(%g) = true, want false", v)
		}
	}
}

func TestAddSubScale(t *testing.T) {
	a := Interval{Lo: 1, Hi: 3}
	b := Interval{Lo: 10, Hi: 14}
	sum := a.Add(b)
	if sum.Lo != 11 || sum.Hi != 17 {
		t.Errorf("Add = %v, want [11, 17]", sum)
	}
	diff := a.Sub(b)
	if diff.Lo != -13 || diff.Hi != -7 {
		t.Errorf("Sub = %v, want [-13, -7]", diff)
	}
	sc := a.Scale(2)
	if sc.Lo != 2 || sc.Hi != 6 {
		t.Errorf("Scale = %v, want [2, 6]", sc)
	}
}

func TestMaxMin(t *testing.T) {
	a := Interval{Lo: 1, Hi: 5}
	b := Interval{Lo: 3, Hi: 4}
	mx := a.Max(b)
	if mx.Lo != 3 || mx.Hi != 5 {
		t.Errorf("Max = %v, want [3, 5]", mx)
	}
	mn := a.Min(b)
	if mn.Lo != 1 || mn.Hi != 4 {
		t.Errorf("Min = %v, want [1, 4]", mn)
	}
}

func TestIntersectUnion(t *testing.T) {
	a := Interval{Lo: 0, Hi: 10}
	b := Interval{Lo: 5, Hi: 15}
	in := a.Intersect(b)
	if in.Lo != 5 || in.Hi != 10 {
		t.Errorf("Intersect = %v, want [5, 10]", in)
	}
	un := a.Union(b)
	if un.Lo != 0 || un.Hi != 15 {
		t.Errorf("Union = %v, want [0, 15]", un)
	}
	disjoint := Interval{Lo: 20, Hi: 30}
	if got := a.Intersect(disjoint); !got.Empty() {
		t.Errorf("Intersect of disjoint intervals = %v, want empty", got)
	}
}

func TestClamp(t *testing.T) {
	iv := Interval{Lo: -1, Hi: 1}
	cases := []struct{ in, want float64 }{{-5, -1}, {0.5, 0.5}, {3, 1}}
	for _, tc := range cases {
		if got := iv.Clamp(tc.in); got != tc.want {
			t.Errorf("Clamp(%g) = %g, want %g", tc.in, got, tc.want)
		}
	}
}

func TestAggregatesAll(t *testing.T) {
	ivs := []Interval{{0, 2}, {1, 5}, {-3, -1}}
	sum := SumAll(ivs)
	if sum.Lo != -2 || sum.Hi != 6 {
		t.Errorf("SumAll = %v, want [-2, 6]", sum)
	}
	mx := MaxAll(ivs)
	if mx.Lo != 1 || mx.Hi != 5 {
		t.Errorf("MaxAll = %v, want [1, 5]", mx)
	}
	mn := MinAll(ivs)
	if mn.Lo != -3 || mn.Hi != -1 {
		t.Errorf("MinAll = %v, want [-3, -1]", mn)
	}
	if got := SumAll(nil); !got.IsExact() || got.Lo != 0 {
		t.Errorf("SumAll(nil) = %v, want [0, 0]", got)
	}
}

func TestMaxAllPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("MaxAll(nil) did not panic")
		}
	}()
	MaxAll(nil)
}

func TestMinAllPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("MinAll(nil) did not panic")
		}
	}()
	MinAll(nil)
}

func TestString(t *testing.T) {
	iv := Interval{Lo: 1.5, Hi: 2.25}
	if got := iv.String(); got != "[1.5, 2.25]" {
		t.Errorf("String = %q", got)
	}
}

// normalize produces a well-formed interval from two arbitrary floats so
// quick.Check explores valid inputs.
func normalize(a, b float64) Interval {
	if math.IsNaN(a) {
		a = 0
	}
	if math.IsNaN(b) {
		b = 0
	}
	if a > b {
		a, b = b, a
	}
	return Interval{Lo: a, Hi: b}
}

func TestQuickCenterInsideInterval(t *testing.T) {
	f := func(v float64, w float64) bool {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
		w = math.Abs(w)
		if math.IsNaN(w) || math.IsInf(w, 0) {
			return true
		}
		iv := Centered(v, w)
		return iv.Valid(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickSumContainsPointSums(t *testing.T) {
	f := func(a1, a2, b1, b2 float64) bool {
		a := normalize(a1, a2)
		b := normalize(b1, b2)
		if a.IsUnbounded() || b.IsUnbounded() {
			return true
		}
		// Keep magnitudes where float64 rounding cannot push a midpoint sum
		// outside the endpoint sum by more than a ULP.
		for _, e := range []float64{a.Lo, a.Hi, b.Lo, b.Hi} {
			if math.Abs(e) > 1e100 {
				return true
			}
		}
		// Sample the endpoints and centers; their sums must lie in a.Add(b).
		sum := a.Add(b)
		for _, x := range []float64{a.Lo, a.Center(), a.Hi} {
			for _, y := range []float64{b.Lo, b.Center(), b.Hi} {
				if !sum.Valid(x + y) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickMaxContainsPointMaxes(t *testing.T) {
	f := func(a1, a2, b1, b2 float64) bool {
		a := normalize(a1, a2)
		b := normalize(b1, b2)
		if a.IsUnbounded() || b.IsUnbounded() {
			return true
		}
		mx := a.Max(b)
		for _, x := range []float64{a.Lo, a.Hi} {
			for _, y := range []float64{b.Lo, b.Hi} {
				if !mx.Valid(math.Max(x, y)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickUnionContainsBoth(t *testing.T) {
	f := func(a1, a2, b1, b2 float64) bool {
		a := normalize(a1, a2)
		b := normalize(b1, b2)
		u := a.Union(b)
		return u.Contains(a) && u.Contains(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickIntersectInsideBoth(t *testing.T) {
	f := func(a1, a2, b1, b2 float64) bool {
		a := normalize(a1, a2)
		b := normalize(b1, b2)
		in := a.Intersect(b)
		if in.Empty() {
			return true
		}
		return a.Contains(in) && b.Contains(in)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickPrecisionWidthReciprocal(t *testing.T) {
	f := func(a1, a2 float64) bool {
		iv := normalize(a1, a2)
		w := iv.Width()
		p := iv.Precision()
		switch {
		case w == 0:
			return math.IsInf(p, 1)
		case math.IsInf(w, 1):
			return p == 0
		default:
			return math.Abs(p*w-1) < 1e-9
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
