package hierarchy

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"apcache/internal/aperrs"
	"apcache/internal/core"
)

// fire always triggers probabilistic adjustments.
type fire struct{}

func (fire) Float64() float64 { return 0 }

func config(levels int) Config {
	return Config{
		Levels:       levels,
		Params:       core.Params{Cvr: 1, Cqr: 2, Alpha: 1, Lambda0: 0, Lambda1: math.Inf(1)},
		InitialWidth: 8,
		RNG:          fire{},
	}
}

func TestTrackEstablishesInvariant(t *testing.T) {
	h, err := New(config(3))
	if err != nil {
		t.Fatal(err)
	}
	h.Track(0, 100)
	if err := h.CheckInvariant(0); err != nil {
		t.Fatalf("invariant after Track: %v", err)
	}
	for l := 0; l < 3; l++ {
		iv, ok := h.At(l, 0)
		if !ok || !iv.Valid(100) {
			t.Errorf("level %d: %v, %v", l, iv, ok)
		}
	}
	if _, ok := h.Top(0); !ok {
		t.Errorf("Top missing")
	}
	if v, ok := h.Value(0); !ok || v != 100 {
		t.Errorf("Value = %g, %v", v, ok)
	}
}

func TestSetPropagatesOnlyAsFarAsNeeded(t *testing.T) {
	h, err := New(config(2))
	if err != nil {
		t.Fatal(err)
	}
	h.Track(0, 100) // both levels [96, 104]
	// Small move inside level 0: no refresh anywhere.
	if n := h.Set(0, 101); n != 0 {
		t.Errorf("in-interval update refreshed %d levels", n)
	}
	// Escape both levels: both refresh.
	if n := h.Set(0, 200); n != 2 {
		t.Errorf("full escape refreshed %d levels, want 2", n)
	}
	if err := h.CheckInvariant(0); err != nil {
		t.Fatalf("invariant after escape: %v", err)
	}
	st := h.Stats()
	if st.ValueHops != 2 || st.Cost != 2 {
		t.Errorf("stats %+v", st)
	}
}

func TestSetPartialPropagation(t *testing.T) {
	// After a query narrows the lower level, a small escape refreshes
	// level 0 but can stop below the (wider) top.
	h, err := New(config(2))
	if err != nil {
		t.Fatal(err)
	}
	h.Track(0, 100)
	// Narrow the chain: read exactly.
	h.Read(0, 0)
	// Grow the top back out by a large escape, then settle.
	h.Set(0, 500)
	if err := h.CheckInvariant(0); err != nil {
		t.Fatal(err)
	}
	l0, _ := h.At(0, 0)
	top, _ := h.Top(0)
	if !top.Contains(l0) {
		t.Fatalf("containment broken: top %v, level0 %v", top, l0)
	}
}

func TestReadFromTopWhenPreciseEnough(t *testing.T) {
	h, err := New(config(3))
	if err != nil {
		t.Fatal(err)
	}
	h.Track(0, 100)
	before := h.Stats()
	iv := h.Read(0, 1000) // top width ~8-24 <= 1000
	if !iv.Valid(100) {
		t.Fatalf("answer %v excludes value", iv)
	}
	if h.Stats().QueryHops != before.QueryHops {
		t.Errorf("top-level answer charged %d hops", h.Stats().QueryHops-before.QueryHops)
	}
}

func TestReadDescendsToSourceForExact(t *testing.T) {
	h, err := New(config(3))
	if err != nil {
		t.Fatal(err)
	}
	h.Track(0, 100)
	iv := h.Read(0, 0)
	if !iv.IsExact() || iv.Lo != 100 {
		t.Fatalf("exact read = %v", iv)
	}
	// Crossed all 3 levels.
	if got := h.Stats().QueryHops; got != 3 {
		t.Errorf("query hops = %d, want 3", got)
	}
	if err := h.CheckInvariant(0); err != nil {
		t.Fatalf("invariant after exact read: %v", err)
	}
	// Repeated exact reads shrink every level's controller width.
	top0, _ := h.Top(0)
	for i := 0; i < 4; i++ {
		h.Read(0, 0)
	}
	top1, _ := h.Top(0)
	if top1.Width() >= top0.Width() {
		t.Errorf("top width %g did not shrink from %g under exact reads", top1.Width(), top0.Width())
	}
}

func TestReadStopsAtSufficientMiddleLevel(t *testing.T) {
	h, err := New(config(3))
	if err != nil {
		t.Fatal(err)
	}
	h.Track(0, 100)
	// Narrow everything via exact reads, then widen only the top by
	// repeated small escapes... instead, directly test: after one exact
	// read, all levels are narrow; a moderately tight read is served high.
	h.Read(0, 0)
	before := h.Stats().QueryHops
	h.Read(0, 1e6)
	if h.Stats().QueryHops != before {
		t.Errorf("wide read descended unnecessarily")
	}
}

func TestUpdatesThenQueriesKeepInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cfg := config(4)
	cfg.RNG = rng
	h, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h.Track(0, 0)
	v := 0.0
	for i := 0; i < 2000; i++ {
		switch rng.Intn(3) {
		case 0, 1:
			v += rng.Float64()*20 - 10
			h.Set(0, v)
		case 2:
			delta := rng.Float64() * 50
			iv := h.Read(0, delta)
			if !iv.Valid(v) {
				t.Fatalf("step %d: answer %v excludes %g", i, iv, v)
			}
			if iv.Width() > delta+1e-9 {
				t.Fatalf("step %d: answer width %g > delta %g", i, iv.Width(), delta)
			}
		}
		if err := h.CheckInvariant(0); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
}

func TestHierarchyAbsorbsChurn(t *testing.T) {
	// The point of adaptive widths in a hierarchy: a fluctuating value
	// refreshes the chain far less often than it changes, and queries with
	// achievable constraints are mostly served without descending to the
	// source.
	rng := rand.New(rand.NewSource(4))
	cfg := config(3)
	cfg.RNG = rng
	h, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h.Track(0, 0)
	v := 0.0
	const updates = 5000
	queries := 0
	for i := 0; i < updates; i++ {
		v += rng.Float64()*2 - 1
		h.Set(0, v)
		if i%10 == 0 {
			h.Read(0, 5+rng.Float64()*20)
			queries++
		}
	}
	st := h.Stats()
	// Churn absorption: value-initiated hops stay well below one per
	// update per level.
	if float64(st.ValueHops) > 0.3*float64(updates*cfg.Levels) {
		t.Errorf("value hops %d for %d updates x %d levels: no absorption",
			st.ValueHops, updates, cfg.Levels)
	}
	// Query locality: average descent well below a full walk to source.
	if float64(st.QueryHops) > 0.7*float64(queries*cfg.Levels) {
		t.Errorf("query hops %d for %d queries x %d levels: queries not served high",
			st.QueryHops, queries, cfg.Levels)
	}
}

func TestConfigValidate(t *testing.T) {
	good := config(2)
	if err := good.Validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	bad := []Config{
		{Levels: 0, Params: good.Params, InitialWidth: 1, RNG: fire{}},
		{Levels: 1, Params: core.Params{Cvr: -1, Cqr: 1}, InitialWidth: 1, RNG: fire{}},
		{Levels: 1, Params: good.Params, InitialWidth: -1, RNG: fire{}},
		{Levels: 1, Params: good.Params, InitialWidth: 1, RNG: nil},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
		if _, err := New(c); err == nil {
			t.Errorf("New accepted bad config %d", i)
		}
	}
}

func TestPanicsOnUnknownKey(t *testing.T) {
	h, _ := New(config(2))
	cases := []func(){
		func() { h.Set(9, 1) },
		func() { h.Read(9, 1) },
		func() { h.At(5, 0) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
	if err := h.CheckInvariant(9); !errors.Is(err, aperrs.ErrUnknownKey) {
		t.Errorf("CheckInvariant of unknown key: err = %v, want ErrUnknownKey match", err)
	}
}

func TestReadCtx(t *testing.T) {
	h, _ := New(config(3))
	h.Track(1, 50)
	// A successful context read matches Read's contract.
	iv, err := h.ReadCtx(context.Background(), 1, 0.5)
	if err != nil {
		t.Fatalf("ReadCtx: %v", err)
	}
	if !iv.Valid(50) || iv.Width() > 0.5 {
		t.Errorf("interval %v, want valid for 50 with width <= 0.5", iv)
	}
	// Unknown keys fail typed instead of panicking.
	if _, err := h.ReadCtx(context.Background(), 9, 1); !errors.Is(err, aperrs.ErrUnknownKey) {
		t.Errorf("unknown key err = %v, want ErrUnknownKey match", err)
	}
	// A done context fails without charging refresh hops.
	before := h.Stats()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := h.ReadCtx(ctx, 1, 0); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled err = %v, want context.Canceled", err)
	}
	if after := h.Stats(); after != before {
		t.Errorf("cancelled ReadCtx charged hops: %+v -> %+v", before, after)
	}
}

func TestQuickInvariantUnderRandomOps(t *testing.T) {
	f := func(seed int64, levelsRaw uint8, ops []byte) bool {
		levels := int(levelsRaw)%4 + 1
		rng := rand.New(rand.NewSource(seed))
		cfg := config(levels)
		cfg.RNG = rng
		h, err := New(cfg)
		if err != nil {
			return false
		}
		h.Track(0, 0)
		v := 0.0
		for _, op := range ops {
			if op%2 == 0 {
				v += float64(int8(op))
				h.Set(0, v)
			} else {
				h.Read(0, float64(op))
			}
			if h.CheckInvariant(0) != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
