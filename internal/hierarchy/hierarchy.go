// Package hierarchy implements multi-level approximate caching, the first
// future-work direction of the paper's Section 5: "each data object resides
// on one source and there is a hierarchy of caches ... the precision of an
// approximation in one cache may affect the precision of derived
// approximations in other caches in the hierarchy."
//
// A Level sits between consumers (queries or a higher-level cache) and a
// parent (the source or a lower-level cache). Each level runs its own
// adaptive width controller per key, with the invariant that a derived
// approximation must contain its parent's approximation: level k's interval
// is always a superset of level k-1's, so validity at the source implies
// validity everywhere up the chain.
//
// Refresh flow generalizes the two-level protocol:
//
//   - an update that escapes level k's interval escapes all narrower levels
//     below it; the escape propagates upward level by level, each charging
//     its own value-initiated refresh cost and re-deriving its interval;
//   - a query at the top level that needs more precision walks down until it
//     reaches a level whose interval is precise enough — or the source —
//     charging one query-initiated refresh per hop descended.
//
// The per-level cost structure rewards the adaptive algorithm for keeping
// upper levels wide (absorbing churn) and lower levels as narrow as their
// consumers demand.
package hierarchy

import (
	"context"
	"fmt"
	"math"

	"apcache/internal/aperrs"
	"apcache/internal/core"
	"apcache/internal/interval"
)

// Rand is the randomness source for the probabilistic width adjustments.
type Rand interface {
	Float64() float64
}

// Config describes one hierarchy.
type Config struct {
	// Levels is the number of caches between consumers and the source
	// (>= 1). Level 0 is closest to the source.
	Levels int
	// Params configures every level's controllers. Cvr/Cqr are the costs
	// of one refresh hop between adjacent levels.
	Params core.Params
	// InitialWidth seeds each controller.
	InitialWidth float64
	// RNG drives the adjustments.
	RNG Rand
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.Levels < 1 {
		return fmt.Errorf("hierarchy: Levels must be >= 1, got %d", c.Levels)
	}
	if err := c.Params.Validate(); err != nil {
		return err
	}
	if c.InitialWidth < 0 || math.IsNaN(c.InitialWidth) {
		return fmt.Errorf("hierarchy: bad InitialWidth %g", c.InitialWidth)
	}
	if c.RNG == nil {
		return fmt.Errorf("hierarchy: nil RNG")
	}
	return nil
}

// levelEntry is one key's state at one level.
type levelEntry struct {
	ctrl *core.Controller
	iv   interval.Interval
}

// Hierarchy is a chain of caches over one source of exact values. It is not
// safe for concurrent use.
type Hierarchy struct {
	cfg    Config
	values map[int]float64
	// entries[level][key]; level 0 adjacent to the source.
	entries []map[int]*levelEntry

	vir, qir int
	cost     float64
}

// New builds a hierarchy.
func New(cfg Config) (*Hierarchy, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	h := &Hierarchy{
		cfg:     cfg,
		values:  make(map[int]float64),
		entries: make([]map[int]*levelEntry, cfg.Levels),
	}
	for l := range h.entries {
		h.entries[l] = make(map[int]*levelEntry)
	}
	return h, nil
}

// Levels returns the number of cache levels.
func (h *Hierarchy) Levels() int { return h.cfg.Levels }

// Track registers a key with its initial value and derives an approximation
// at every level. Upper levels are at least as wide as lower ones: each
// level's interval is the union of its own controller's interval with the
// level below, preserving the containment invariant.
func (h *Hierarchy) Track(key int, v float64) {
	h.values[key] = v
	prev := interval.Exact(v)
	for l := 0; l < h.cfg.Levels; l++ {
		ctrl := core.NewController(h.cfg.Params, h.cfg.InitialWidth, h.cfg.RNG)
		iv := ctrl.NewInterval(v).Union(prev)
		h.entries[l][key] = &levelEntry{ctrl: ctrl, iv: iv}
		prev = iv
	}
}

// Value returns the exact value at the source.
func (h *Hierarchy) Value(key int) (float64, bool) {
	v, ok := h.values[key]
	return v, ok
}

// At returns level l's approximation for key.
func (h *Hierarchy) At(level, key int) (interval.Interval, bool) {
	if level < 0 || level >= h.cfg.Levels {
		panic(fmt.Sprintf("hierarchy: level %d out of range 0..%d", level, h.cfg.Levels-1))
	}
	e, ok := h.entries[level][key]
	if !ok {
		return interval.Interval{}, false
	}
	return e.iv, true
}

// Top returns the approximation at the level consumers read (the last one).
func (h *Hierarchy) Top(key int) (interval.Interval, bool) {
	return h.At(h.cfg.Levels-1, key)
}

// Set applies an update at the source. The escape propagates upward from
// level 0: every level whose interval the new value escapes pays one
// value-initiated refresh hop and re-derives its interval (containing the
// refreshed interval below it); the first level that still contains the
// value stops the propagation. It returns the number of levels refreshed.
func (h *Hierarchy) Set(key int, v float64) int {
	if _, ok := h.values[key]; !ok {
		panic(fmt.Sprintf("hierarchy: Set of untracked key %d", key))
	}
	h.values[key] = v
	refreshed := 0
	prev := interval.Exact(v)
	for l := 0; l < h.cfg.Levels; l++ {
		e := h.entries[l][key]
		if e.iv.Valid(v) && e.iv.Contains(prev) {
			break
		}
		h.vir++
		h.cost += h.cfg.Params.Cvr
		e.iv = e.ctrl.RefreshInterval(core.ValueInitiated, v).Union(prev)
		prev = e.iv
		refreshed++
	}
	return refreshed
}

// Read serves a consumer needing result width at most delta for key. It
// reads down the hierarchy from the top: if a level's interval is narrow
// enough it answers; otherwise the query descends, paying one
// query-initiated hop per level crossed, ultimately reaching the exact
// source value. Every level crossed re-derives a narrowed interval on the
// way back up (the refreshed approximation subsequent queries use).
//
// The returned interval contains the exact value and has width <= delta.
func (h *Hierarchy) Read(key int, delta float64) interval.Interval {
	if _, ok := h.values[key]; !ok {
		panic(fmt.Sprintf("hierarchy: Read of untracked key %d", key))
	}
	top := h.cfg.Levels - 1
	// Descend while precision is insufficient.
	level := top
	for level >= 0 {
		e := h.entries[level][key]
		if e.iv.Width() <= delta {
			break
		}
		h.qir++
		h.cost += h.cfg.Params.Cqr
		level--
	}
	// The answer: a sufficient level's interval, or the exact source value.
	var answer interval.Interval
	if level >= 0 {
		answer = h.entries[level][key].iv
	} else {
		answer = interval.Exact(h.values[key])
	}
	// Every level crossed on the way down took a query-initiated refresh:
	// re-derive its interval around the answer (each containing the level
	// below) so subsequent queries see the narrowed approximations.
	prev := answer
	for l := level + 1; l <= top; l++ {
		e := h.entries[l][key]
		e.iv = e.ctrl.RefreshInterval(core.QueryInitiated, prev.Center()).Union(prev)
		prev = e.iv
	}
	return answer
}

// ReadCtx is Read with the error-returning contract of API v1: an untracked
// key fails with an error matching aperrs.ErrUnknownKey instead of
// panicking, and a done context fails with its error before any refresh
// hop is charged. The hierarchy itself is in-memory and single-threaded, so
// cancellation cannot interrupt the descent once it starts; the check
// exists so a hierarchy read composes into cancellable call chains.
func (h *Hierarchy) ReadCtx(ctx context.Context, key int, delta float64) (interval.Interval, error) {
	if err := ctx.Err(); err != nil {
		return interval.Interval{}, err
	}
	if _, ok := h.values[key]; !ok {
		return interval.Interval{}, aperrs.UnknownKey(key)
	}
	return h.Read(key, delta), nil
}

// Stats reports cumulative refresh hops and cost.
type Stats struct {
	// ValueHops and QueryHops count refresh hops by kind.
	ValueHops, QueryHops int
	// Cost is the total hop cost.
	Cost float64
}

// Stats snapshots the counters.
func (h *Hierarchy) Stats() Stats {
	return Stats{ValueHops: h.vir, QueryHops: h.qir, Cost: h.cost}
}

// CheckInvariant verifies the containment chain for key: source value inside
// level 0, and each level inside the next. It returns an error describing
// the first violation, for tests and debugging.
func (h *Hierarchy) CheckInvariant(key int) error {
	v, ok := h.values[key]
	if !ok {
		return fmt.Errorf("hierarchy: %w", aperrs.UnknownKey(key))
	}
	prev := interval.Exact(v)
	for l := 0; l < h.cfg.Levels; l++ {
		e, ok := h.entries[l][key]
		if !ok {
			return fmt.Errorf("hierarchy: key %d missing at level %d", key, l)
		}
		if !e.iv.Valid(v) {
			return fmt.Errorf("hierarchy: level %d interval %v excludes value %g", l, e.iv, v)
		}
		if !e.iv.Contains(prev) {
			return fmt.Errorf("hierarchy: level %d interval %v does not contain level below %v", l, e.iv, prev)
		}
		prev = e.iv
	}
	return nil
}
