// Package source implements the server side of the approximate caching
// protocol: it hosts exact numeric values, tracks the interval approximation
// each cache holds for each value, detects invalidation on updates
// (value-initiated refreshes), serves exact reads (query-initiated
// refreshes), and runs one width policy per (cache, value) pair — the
// adaptive controller of internal/core, or any other core.WidthPolicy.
//
// Per the paper, the source is never told about cache evictions, so it keeps
// maintaining subscriptions for evicted entries; the cache re-decides
// admission whenever a refresh arrives.
package source

import (
	"fmt"

	"apcache/internal/core"
	"apcache/internal/interval"
)

// PolicyFactory builds the width policy for a newly subscribed
// (cache, value) pair.
type PolicyFactory func(cacheID, key int) core.WidthPolicy

// Refresh is one message from the source to a cache carrying a fresh
// approximation (and, for query-initiated refreshes, the exact value the
// query consumes).
type Refresh struct {
	// CacheID identifies the destination cache.
	CacheID int
	// Key identifies the value.
	Key int
	// Value is the current exact value.
	Value float64
	// Interval is the new approximation to install.
	Interval interval.Interval
	// OriginalWidth is the policy's pre-threshold width, which the cache
	// uses as its eviction rank.
	OriginalWidth float64
}

type subscription struct {
	policy core.WidthPolicy
	iv     interval.Interval
	// cap bounds the width of every approximation shipped on this
	// subscription (0 = uncapped). The continuous-query engine sets it to
	// the key's share of a query's precision budget; the policy keeps
	// adapting underneath, the cap only clips what ships.
	cap float64
}

// clamped narrows iv to the subscription's width cap. The clamp intersects
// with the cap-wide interval centered on the exact value v, so the result
// still contains v, stays inside iv where possible, and handles unbounded
// policy intervals (a policy width past lambda1).
func (sub *subscription) clamped(iv interval.Interval, v float64) interval.Interval {
	if sub.cap <= 0 || iv.Width() <= sub.cap {
		return iv
	}
	return iv.Intersect(interval.Centered(v, sub.cap))
}

// steer keeps the policy's internal width from running away past the cap:
// growth is pointless above it (every shipped interval is clipped), and
// capping the learned width means a later cap raise resumes growth from
// the cap rather than jumping to a stale huge width.
func (sub *subscription) steer() {
	if sub.cap <= 0 {
		return
	}
	type widthSetter interface{ SetWidth(w float64) }
	if ws, ok := sub.policy.(widthSetter); ok && sub.policy.Width() > sub.cap {
		ws.SetWidth(sub.cap)
	}
}

// keySub is one cache's subscription to one key. Per-key subscriber lists
// are small slices — typically one cache in-process, a handful of clients on
// a server — so a linear scan beats an inner map and, more importantly, Set
// iterates them without a map-iterator setup.
type keySub struct {
	cacheID int
	sub     *subscription
}

// Source hosts a set of exact values and their per-cache subscriptions. It
// is not safe for concurrent use; the networked server serializes access.
//
// Subscriptions are indexed by key: Set — the hot path, called for every
// update — walks only the subscribers of the key being updated, not the
// whole subscription population (which made every update O(all
// subscriptions) and dominated profiles of the sharded store under update
// load).
type Source struct {
	values  map[int]float64
	subs    map[int][]keySub
	nSubs   int
	factory PolicyFactory
	scratch []Refresh // Set's reusable result buffer
}

// New returns an empty source using factory for new subscriptions.
func New(factory PolicyFactory) *Source {
	if factory == nil {
		panic("source: nil PolicyFactory")
	}
	return &Source{
		values:  make(map[int]float64),
		subs:    make(map[int][]keySub),
		factory: factory,
	}
}

// SetInitial installs a value without generating refreshes; use it to seed
// the source before subscriptions exist.
func (s *Source) SetInitial(key int, v float64) { s.values[key] = v }

// Value returns the current exact value for key.
func (s *Source) Value(key int) (float64, bool) {
	v, ok := s.values[key]
	return v, ok
}

// Keys returns the number of hosted values.
func (s *Source) Keys() int { return len(s.values) }

// ForEach calls fn for every hosted key and its current exact value, in
// unspecified order. Snapshot callers (persistence) use it to reach every
// key — including ones whose cache entries were evicted, which Entries-based
// walks miss — while holding the owning shard's lock.
func (s *Source) ForEach(fn func(key int, v float64)) {
	for k, v := range s.values {
		fn(k, v)
	}
}

// Subscriptions returns the number of live subscriptions.
func (s *Source) Subscriptions() int { return s.nSubs }

// lookup returns the subscription for (cacheID, key), or nil.
func (s *Source) lookup(cacheID, key int) *subscription {
	for _, ks := range s.subs[key] {
		if ks.cacheID == cacheID {
			return ks.sub
		}
	}
	return nil
}

// install registers a subscription for (cacheID, key).
func (s *Source) install(cacheID, key int, sub *subscription) {
	s.subs[key] = append(s.subs[key], keySub{cacheID: cacheID, sub: sub})
	s.nSubs++
}

// Subscribe registers cacheID's interest in key and returns the initial
// refresh carrying the first approximation. Subscribing an already
// subscribed pair returns the current approximation without adjusting the
// policy. Subscribe panics if the key does not exist.
func (s *Source) Subscribe(cacheID, key int) Refresh {
	v, ok := s.values[key]
	if !ok {
		panic(fmt.Sprintf("source: Subscribe to unknown key %d", key))
	}
	sub := s.lookup(cacheID, key)
	if sub == nil {
		sub = &subscription{policy: s.factory(cacheID, key)}
		sub.iv = sub.clamped(sub.policy.NewInterval(v), v)
		s.install(cacheID, key, sub)
	}
	return Refresh{CacheID: cacheID, Key: key, Value: v, Interval: sub.iv, OriginalWidth: sub.policy.Width()}
}

// Unsubscribe removes the pair's subscription, reporting whether it existed.
// The adaptive algorithm's caches never call this (silent eviction); the
// exact-caching baseline does notify sources.
func (s *Source) Unsubscribe(cacheID, key int) bool {
	list := s.subs[key]
	for i, ks := range list {
		if ks.cacheID == cacheID {
			list[i] = list[len(list)-1]
			list = list[:len(list)-1]
			if len(list) == 0 {
				delete(s.subs, key)
			} else {
				s.subs[key] = list
			}
			s.nSubs--
			return true
		}
	}
	return false
}

// UnsubscribeCache removes every subscription held by cacheID, returning how
// many were removed. The networked server uses it to reap a disconnected
// client's subscriptions regardless of which keys it held (connection
// teardown, not the cache-eviction notification the paper's algorithm
// avoids).
func (s *Source) UnsubscribeCache(cacheID int) int {
	n := 0
	for key, list := range s.subs {
		kept := list[:0]
		for _, ks := range list {
			if ks.cacheID == cacheID {
				n++
				continue
			}
			kept = append(kept, ks)
		}
		if len(kept) == 0 {
			delete(s.subs, key)
		} else {
			s.subs[key] = kept
		}
	}
	s.nSubs -= n
	return n
}

// Subscribed reports whether the pair has a live subscription.
func (s *Source) Subscribed(cacheID, key int) bool {
	return s.lookup(cacheID, key) != nil
}

// Set updates key's exact value and returns the value-initiated refreshes
// for every subscription whose interval the new value escapes. Each such
// policy is adjusted with a ValueInitiated refresh (directionally, for
// uncentered policies) and ships a new interval centered per its policy.
// Only the updated key's subscribers are visited.
//
// The returned slice is a buffer owned by the Source and overwritten by the
// next Set call; callers consume it before updating again (every caller is
// already structured that way — the results feed a cache install or a push
// enqueue under the same lock).
func (s *Source) Set(key int, v float64) []Refresh {
	s.values[key] = v
	out := s.scratch[:0]
	for _, ks := range s.subs[key] {
		sub := ks.sub
		if sub.iv.Valid(v) {
			continue
		}
		above := v > sub.iv.Hi
		var iv interval.Interval
		if uc, ok := sub.policy.(*core.UncenteredController); ok {
			iv = uc.RefreshIntervalDirectional(core.ValueInitiated, above, v)
		} else {
			iv = sub.policy.RefreshInterval(core.ValueInitiated, v)
		}
		iv = sub.clamped(iv, v)
		sub.steer()
		sub.iv = iv
		out = append(out, Refresh{
			CacheID:       ks.cacheID,
			Key:           key,
			Value:         v,
			Interval:      iv,
			OriginalWidth: sub.policy.Width(),
		})
	}
	s.scratch = out
	return out
}

// Read serves a query-initiated refresh: it returns the exact value together
// with a new approximation, adjusting the pair's policy with a
// QueryInitiated refresh. Reading through an unsubscribed pair subscribes it
// first (a query may touch a value the cache has never seen). Read panics
// on an unknown key.
func (s *Source) Read(cacheID, key int) Refresh {
	v, ok := s.values[key]
	if !ok {
		panic(fmt.Sprintf("source: Read of unknown key %d", key))
	}
	sub := s.lookup(cacheID, key)
	if sub == nil {
		sub = &subscription{policy: s.factory(cacheID, key)}
		s.install(cacheID, key, sub)
	}
	var iv interval.Interval
	if uc, ok := sub.policy.(*core.UncenteredController); ok {
		iv = uc.RefreshIntervalDirectional(core.QueryInitiated, false, v)
	} else {
		iv = sub.policy.RefreshInterval(core.QueryInitiated, v)
	}
	iv = sub.clamped(iv, v)
	sub.steer()
	sub.iv = iv
	return Refresh{CacheID: cacheID, Key: key, Value: v, Interval: iv, OriginalWidth: sub.policy.Width()}
}

// SetWidthCap bounds the width of every approximation shipped to
// (cacheID, key) at cap (0 removes the bound) and returns the width of the
// currently shipped interval, so the caller can tell whether it must
// force a refresh (via Read) to bring the live approximation under a
// tightened cap. It reports false if the pair has no subscription.
func (s *Source) SetWidthCap(cacheID, key int, cap float64) (curWidth float64, ok bool) {
	sub := s.lookup(cacheID, key)
	if sub == nil {
		return 0, false
	}
	sub.cap = cap
	sub.steer()
	return sub.iv.Width(), true
}

// WidthCap returns the pair's current width cap (0 = uncapped) and whether
// the subscription exists.
func (s *Source) WidthCap(cacheID, key int) (float64, bool) {
	sub := s.lookup(cacheID, key)
	if sub == nil {
		return 0, false
	}
	return sub.cap, true
}

// IntervalFor returns the interval the source believes cacheID holds for
// key, for inspection and tests.
func (s *Source) IntervalFor(cacheID, key int) (interval.Interval, bool) {
	sub := s.lookup(cacheID, key)
	if sub == nil {
		return interval.Interval{}, false
	}
	return sub.iv, true
}

// PolicyFor returns the width policy for a subscription, for inspection.
func (s *Source) PolicyFor(cacheID, key int) (core.WidthPolicy, bool) {
	sub := s.lookup(cacheID, key)
	if sub == nil {
		return nil, false
	}
	return sub.policy, true
}
