// Package source implements the server side of the approximate caching
// protocol: it hosts exact numeric values, tracks the interval approximation
// each cache holds for each value, detects invalidation on updates
// (value-initiated refreshes), serves exact reads (query-initiated
// refreshes), and runs one width policy per (cache, value) pair — the
// adaptive controller of internal/core, or any other core.WidthPolicy.
//
// Per the paper, the source is never told about cache evictions, so it keeps
// maintaining subscriptions for evicted entries; the cache re-decides
// admission whenever a refresh arrives.
package source

import (
	"fmt"

	"apcache/internal/core"
	"apcache/internal/interval"
)

// PolicyFactory builds the width policy for a newly subscribed
// (cache, value) pair.
type PolicyFactory func(cacheID, key int) core.WidthPolicy

// Refresh is one message from the source to a cache carrying a fresh
// approximation (and, for query-initiated refreshes, the exact value the
// query consumes).
type Refresh struct {
	// CacheID identifies the destination cache.
	CacheID int
	// Key identifies the value.
	Key int
	// Value is the current exact value.
	Value float64
	// Interval is the new approximation to install.
	Interval interval.Interval
	// OriginalWidth is the policy's pre-threshold width, which the cache
	// uses as its eviction rank.
	OriginalWidth float64
}

type subID struct{ cache, key int }

type subscription struct {
	policy core.WidthPolicy
	iv     interval.Interval
}

// Source hosts a set of exact values and their per-cache subscriptions. It
// is not safe for concurrent use; the networked server serializes access.
type Source struct {
	values  map[int]float64
	subs    map[subID]*subscription
	factory PolicyFactory
}

// New returns an empty source using factory for new subscriptions.
func New(factory PolicyFactory) *Source {
	if factory == nil {
		panic("source: nil PolicyFactory")
	}
	return &Source{
		values:  make(map[int]float64),
		subs:    make(map[subID]*subscription),
		factory: factory,
	}
}

// SetInitial installs a value without generating refreshes; use it to seed
// the source before subscriptions exist.
func (s *Source) SetInitial(key int, v float64) { s.values[key] = v }

// Value returns the current exact value for key.
func (s *Source) Value(key int) (float64, bool) {
	v, ok := s.values[key]
	return v, ok
}

// Keys returns the number of hosted values.
func (s *Source) Keys() int { return len(s.values) }

// Subscriptions returns the number of live subscriptions.
func (s *Source) Subscriptions() int { return len(s.subs) }

// Subscribe registers cacheID's interest in key and returns the initial
// refresh carrying the first approximation. Subscribing an already
// subscribed pair returns the current approximation without adjusting the
// policy. Subscribe panics if the key does not exist.
func (s *Source) Subscribe(cacheID, key int) Refresh {
	v, ok := s.values[key]
	if !ok {
		panic(fmt.Sprintf("source: Subscribe to unknown key %d", key))
	}
	id := subID{cache: cacheID, key: key}
	sub, ok := s.subs[id]
	if !ok {
		sub = &subscription{policy: s.factory(cacheID, key)}
		sub.iv = sub.policy.NewInterval(v)
		s.subs[id] = sub
	}
	return Refresh{CacheID: cacheID, Key: key, Value: v, Interval: sub.iv, OriginalWidth: sub.policy.Width()}
}

// Unsubscribe removes the pair's subscription, reporting whether it existed.
// The adaptive algorithm's caches never call this (silent eviction); the
// exact-caching baseline does notify sources.
func (s *Source) Unsubscribe(cacheID, key int) bool {
	id := subID{cache: cacheID, key: key}
	if _, ok := s.subs[id]; !ok {
		return false
	}
	delete(s.subs, id)
	return true
}

// UnsubscribeCache removes every subscription held by cacheID, returning how
// many were removed. The networked server uses it to reap a disconnected
// client's subscriptions regardless of which keys it held (connection
// teardown, not the cache-eviction notification the paper's algorithm
// avoids).
func (s *Source) UnsubscribeCache(cacheID int) int {
	n := 0
	for id := range s.subs {
		if id.cache == cacheID {
			delete(s.subs, id)
			n++
		}
	}
	return n
}

// Subscribed reports whether the pair has a live subscription.
func (s *Source) Subscribed(cacheID, key int) bool {
	_, ok := s.subs[subID{cache: cacheID, key: key}]
	return ok
}

// Set updates key's exact value and returns the value-initiated refreshes
// for every subscription whose interval the new value escapes. Each such
// policy is adjusted with a ValueInitiated refresh (directionally, for
// uncentered policies) and ships a new interval centered per its policy.
func (s *Source) Set(key int, v float64) []Refresh {
	s.values[key] = v
	var out []Refresh
	for id, sub := range s.subs {
		if id.key != key || sub.iv.Valid(v) {
			continue
		}
		above := v > sub.iv.Hi
		var iv interval.Interval
		if uc, ok := sub.policy.(*core.UncenteredController); ok {
			iv = uc.RefreshIntervalDirectional(core.ValueInitiated, above, v)
		} else {
			iv = sub.policy.RefreshInterval(core.ValueInitiated, v)
		}
		sub.iv = iv
		out = append(out, Refresh{
			CacheID:       id.cache,
			Key:           key,
			Value:         v,
			Interval:      iv,
			OriginalWidth: sub.policy.Width(),
		})
	}
	return out
}

// Read serves a query-initiated refresh: it returns the exact value together
// with a new approximation, adjusting the pair's policy with a
// QueryInitiated refresh. Reading through an unsubscribed pair subscribes it
// first (a query may touch a value the cache has never seen). Read panics
// on an unknown key.
func (s *Source) Read(cacheID, key int) Refresh {
	v, ok := s.values[key]
	if !ok {
		panic(fmt.Sprintf("source: Read of unknown key %d", key))
	}
	id := subID{cache: cacheID, key: key}
	sub, ok := s.subs[id]
	if !ok {
		sub = &subscription{policy: s.factory(cacheID, key)}
		s.subs[id] = sub
	}
	var iv interval.Interval
	if uc, ok := sub.policy.(*core.UncenteredController); ok {
		iv = uc.RefreshIntervalDirectional(core.QueryInitiated, false, v)
	} else {
		iv = sub.policy.RefreshInterval(core.QueryInitiated, v)
	}
	sub.iv = iv
	return Refresh{CacheID: cacheID, Key: key, Value: v, Interval: iv, OriginalWidth: sub.policy.Width()}
}

// IntervalFor returns the interval the source believes cacheID holds for
// key, for inspection and tests.
func (s *Source) IntervalFor(cacheID, key int) (interval.Interval, bool) {
	sub, ok := s.subs[subID{cache: cacheID, key: key}]
	if !ok {
		return interval.Interval{}, false
	}
	return sub.iv, true
}

// PolicyFor returns the width policy for a subscription, for inspection.
func (s *Source) PolicyFor(cacheID, key int) (core.WidthPolicy, bool) {
	sub, ok := s.subs[subID{cache: cacheID, key: key}]
	if !ok {
		return nil, false
	}
	return sub.policy, true
}
