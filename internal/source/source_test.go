package source

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"apcache/internal/core"
)

func params() core.Params {
	return core.Params{Cvr: 1, Cqr: 2, Alpha: 1, Lambda0: 0, Lambda1: math.Inf(1)}
}

// fixedRand always fires probabilistic adjustments.
type fixedRand struct{}

func (fixedRand) Float64() float64 { return 0 }

func newTestSource(initialWidth float64) *Source {
	return New(func(cacheID, key int) core.WidthPolicy {
		return core.NewController(params(), initialWidth, fixedRand{})
	})
}

func TestSubscribeShipsCenteredInterval(t *testing.T) {
	s := newTestSource(10)
	s.SetInitial(1, 100)
	r := s.Subscribe(0, 1)
	if r.Value != 100 {
		t.Fatalf("value %g", r.Value)
	}
	if r.Interval.Lo != 95 || r.Interval.Hi != 105 {
		t.Errorf("interval %v, want [95, 105]", r.Interval)
	}
	if r.OriginalWidth != 10 {
		t.Errorf("original width %g", r.OriginalWidth)
	}
	if !s.Subscribed(0, 1) {
		t.Errorf("not subscribed after Subscribe")
	}
}

func TestSubscribeIdempotent(t *testing.T) {
	s := newTestSource(10)
	s.SetInitial(1, 100)
	a := s.Subscribe(0, 1)
	b := s.Subscribe(0, 1)
	if a.Interval != b.Interval {
		t.Errorf("re-subscribe changed interval: %v vs %v", a.Interval, b.Interval)
	}
	if s.Subscriptions() != 1 {
		t.Errorf("subscriptions = %d", s.Subscriptions())
	}
}

func TestSubscribeUnknownKeyPanics(t *testing.T) {
	s := newTestSource(1)
	defer func() {
		if recover() == nil {
			t.Fatalf("no panic")
		}
	}()
	s.Subscribe(0, 99)
}

func TestSetWithinIntervalIsSilent(t *testing.T) {
	s := newTestSource(10)
	s.SetInitial(1, 100)
	s.Subscribe(0, 1)
	refreshes := s.Set(1, 104) // inside [95, 105]
	if len(refreshes) != 0 {
		t.Fatalf("got %d refreshes for in-interval update", len(refreshes))
	}
	if v, _ := s.Value(1); v != 104 {
		t.Errorf("value not updated: %g", v)
	}
}

func TestSetEscapeTriggersVIRAndGrowth(t *testing.T) {
	s := newTestSource(10)
	s.SetInitial(1, 100)
	s.Subscribe(0, 1)
	refreshes := s.Set(1, 110) // escapes [95, 105]
	if len(refreshes) != 1 {
		t.Fatalf("got %d refreshes, want 1", len(refreshes))
	}
	r := refreshes[0]
	// alpha=1, theta=1: width doubles to 20, centered on 110.
	if r.Interval.Lo != 100 || r.Interval.Hi != 120 {
		t.Errorf("refresh interval %v, want [100, 120]", r.Interval)
	}
	if r.OriginalWidth != 20 {
		t.Errorf("original width %g, want 20", r.OriginalWidth)
	}
	if !r.Interval.Valid(110) {
		t.Errorf("shipped interval invalid for new value")
	}
}

func TestSetRefreshesOnlyInvalidatedCaches(t *testing.T) {
	s := New(func(cacheID, key int) core.WidthPolicy {
		// Cache 0 gets a narrow interval, cache 1 a wide one.
		w := 10.0
		if cacheID == 1 {
			w = 1000
		}
		return core.NewController(params(), w, fixedRand{})
	})
	s.SetInitial(1, 100)
	s.Subscribe(0, 1)
	s.Subscribe(1, 1)
	refreshes := s.Set(1, 110)
	if len(refreshes) != 1 || refreshes[0].CacheID != 0 {
		t.Fatalf("refreshes %+v, want only cache 0", refreshes)
	}
}

func TestReadAdjustsAndShips(t *testing.T) {
	s := newTestSource(10)
	s.SetInitial(1, 100)
	s.Subscribe(0, 1)
	r := s.Read(0, 1)
	if r.Value != 100 {
		t.Fatalf("read value %g", r.Value)
	}
	// QIR with theta=1 alpha=1 halves the width to 5.
	if r.Interval.Width() != 5 {
		t.Errorf("width after QIR = %g, want 5", r.Interval.Width())
	}
}

func TestReadAutoSubscribes(t *testing.T) {
	s := newTestSource(10)
	s.SetInitial(1, 50)
	r := s.Read(7, 1)
	if !s.Subscribed(7, 1) {
		t.Fatalf("Read did not subscribe")
	}
	if !r.Interval.Valid(50) {
		t.Errorf("interval %v invalid for 50", r.Interval)
	}
}

func TestReadUnknownKeyPanics(t *testing.T) {
	s := newTestSource(10)
	defer func() {
		if recover() == nil {
			t.Fatalf("no panic")
		}
	}()
	s.Read(0, 42)
}

func TestUnsubscribeStopsRefreshes(t *testing.T) {
	s := newTestSource(10)
	s.SetInitial(1, 100)
	s.Subscribe(0, 1)
	if !s.Unsubscribe(0, 1) {
		t.Fatalf("Unsubscribe = false")
	}
	if s.Unsubscribe(0, 1) {
		t.Fatalf("double Unsubscribe = true")
	}
	if got := s.Set(1, 1e9); len(got) != 0 {
		t.Errorf("refreshes after unsubscribe: %+v", got)
	}
}

func TestUnsubscribeCacheReapsOnlyThatCache(t *testing.T) {
	s := newTestSource(10)
	for _, key := range []int{1, 7, 300} {
		s.SetInitial(key, 0)
		s.Subscribe(0, key)
		s.Subscribe(1, key)
	}
	if n := s.UnsubscribeCache(0); n != 3 {
		t.Fatalf("UnsubscribeCache(0) reaped %d, want 3", n)
	}
	if n := s.UnsubscribeCache(0); n != 0 {
		t.Errorf("second UnsubscribeCache(0) reaped %d, want 0", n)
	}
	if s.Subscriptions() != 3 {
		t.Errorf("cache 1 lost subscriptions: %d live, want 3", s.Subscriptions())
	}
	// Cache 1 still gets refreshes; cache 0 gets none.
	for _, r := range s.Set(7, 1e9) {
		if r.CacheID == 0 {
			t.Errorf("refresh prepared for reaped cache: %+v", r)
		}
	}
}

func TestEvictedEntriesKeepRefreshing(t *testing.T) {
	// The paper's protocol: caches do not notify sources of evictions, so
	// the source keeps pushing VIRs. We model eviction as simply not
	// unsubscribing; the subscription must stay live.
	s := newTestSource(10)
	s.SetInitial(1, 0)
	s.Subscribe(0, 1)
	// Cache evicts silently - nothing happens at the source.
	got := s.Set(1, 100)
	if len(got) != 1 {
		t.Errorf("source stopped refreshing after silent eviction")
	}
}

func TestUncenteredPolicyGetsDirectionalSignal(t *testing.T) {
	s := New(func(cacheID, key int) core.WidthPolicy {
		return core.NewUncenteredController(params(), 8, fixedRand{})
	})
	s.SetInitial(1, 100)
	s.Subscribe(0, 1) // [96, 104]
	refreshes := s.Set(1, 110)
	if len(refreshes) != 1 {
		t.Fatalf("refreshes %d", len(refreshes))
	}
	iv := refreshes[0].Interval
	// Above-escape grows only the upper width: lower 4, upper 8 around 110.
	if iv.Lo != 106 || iv.Hi != 118 {
		t.Errorf("interval %v, want [106, 118]", iv)
	}
	// Below-escape grows the lower width.
	refreshes = s.Set(1, 100)
	iv = refreshes[0].Interval
	if 100-iv.Lo != 8 {
		t.Errorf("below-escape lower width %g, want 8", 100-iv.Lo)
	}
}

func TestIntervalForAndPolicyFor(t *testing.T) {
	s := newTestSource(10)
	s.SetInitial(1, 100)
	if _, ok := s.IntervalFor(0, 1); ok {
		t.Fatalf("IntervalFor before subscribe = ok")
	}
	if _, ok := s.PolicyFor(0, 1); ok {
		t.Fatalf("PolicyFor before subscribe = ok")
	}
	s.Subscribe(0, 1)
	iv, ok := s.IntervalFor(0, 1)
	if !ok || !iv.Valid(100) {
		t.Errorf("IntervalFor = %v, %v", iv, ok)
	}
	if p, ok := s.PolicyFor(0, 1); !ok || p.Width() != 10 {
		t.Errorf("PolicyFor wrong")
	}
}

func TestKeysCount(t *testing.T) {
	s := newTestSource(1)
	s.SetInitial(1, 0)
	s.SetInitial(2, 0)
	if s.Keys() != 2 {
		t.Errorf("Keys = %d", s.Keys())
	}
	if _, ok := s.Value(3); ok {
		t.Errorf("Value(3) = ok")
	}
}

func TestNewNilFactoryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("no panic")
		}
	}()
	New(nil)
}

func TestQuickShippedIntervalsAlwaysValid(t *testing.T) {
	f := func(seed int64, steps uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		s := New(func(cacheID, key int) core.WidthPolicy {
			return core.NewController(params(), 1+rng.Float64()*10, rng)
		})
		s.SetInitial(0, 0)
		s.Subscribe(0, 0)
		v := 0.0
		for i := 0; i < int(steps); i++ {
			switch rng.Intn(3) {
			case 0, 1:
				v += rng.Float64()*20 - 10
				for _, r := range s.Set(0, v) {
					if !r.Interval.Valid(v) {
						return false
					}
				}
			case 2:
				r := s.Read(0, 0)
				if r.Value != v || !r.Interval.Valid(v) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
