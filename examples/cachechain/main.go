// Cachechain demonstrates the multi-level caching extension (the paper's
// Section 5 future work): a sensor's value flows through a chain of three
// caches — think device-edge-region — each holding an interval whose width
// its own adaptive controller sets. Updates propagate only as far up the
// chain as they invalidate; queries descend only as far down as their
// precision constraint requires.
//
// Run with:
//
//	go run ./examples/cachechain
package main

import (
	"fmt"
	"math"
	"math/rand"

	"apcache"
)

func main() {
	rng := rand.New(rand.NewSource(42))
	h, err := apcache.NewHierarchy(apcache.HierarchyConfig{
		Levels: 3, // device -> edge -> region
		Params: apcache.Params{
			Cvr: 1, Cqr: 2, Alpha: 1,
			Lambda0: 0, Lambda1: math.Inf(1),
		},
		InitialWidth: 4,
		RNG:          rng,
	})
	if err != nil {
		panic(err)
	}
	h.Track(0, 100)

	levelName := []string{"device", "edge", "region"}
	show := func(when string) {
		fmt.Printf("%s:\n", when)
		for l := 0; l < 3; l++ {
			iv, _ := h.At(l, 0)
			fmt.Printf("  %-6s %v (width %.3g)\n", levelName[l], iv, iv.Width())
		}
	}
	show("initial chain")

	// The sensor fluctuates for a while; watch how many levels each update
	// actually touches.
	v := 100.0
	hops := 0
	for i := 0; i < 500; i++ {
		v += rng.Float64()*6 - 3
		hops += h.Set(0, v)
	}
	fmt.Printf("\n500 updates propagated %d refresh hops (%.2f levels per update on average)\n",
		hops, float64(hops)/500)
	show("after update pressure")

	// Queries of decreasing tolerance descend further down the chain.
	fmt.Println()
	for _, delta := range []float64{200, 20, 0} {
		before := h.Stats().QueryHops
		ans := h.Read(0, delta)
		descended := h.Stats().QueryHops - before
		fmt.Printf("read with delta=%-4g -> %v after descending %d level(s)\n", delta, ans, descended)
	}

	st := h.Stats()
	fmt.Printf("\ntotals: %d value hops, %d query hops, cost %.4g\n",
		st.ValueHops, st.QueryHops, st.Cost)
}
