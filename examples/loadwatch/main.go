// Loadwatch demonstrates continuous queries: instead of re-running a bounded
// aggregate against the cache, the client registers it once and the server
// maintains the answer incrementally, pushing an update only when the answer
// interval changes. One standing SUM tracks total fleet load within +/- 4
// units; one standing MAX tracks the hottest node within +/- 1. Neither
// costs the client any per-update query work — compare stockticker, which
// re-executes its SUM every round.
//
// Run with:
//
//	go run ./examples/loadwatch
package main

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"apcache"
)

const (
	nodes = 12
	ticks = 120
)

func main() {
	srv, addr, err := apcache.Serve("127.0.0.1:0", apcache.ServerConfig{
		Params:       apcache.DefaultParams(1, 2, 0.01),
		InitialWidth: 2,
		Seed:         1,
	})
	if err != nil {
		panic(err)
	}
	defer srv.Close()

	rng := rand.New(rand.NewSource(7))
	load := make([]float64, nodes)
	keys := make([]int, nodes)
	for k := range load {
		load[k] = 40 + rng.Float64()*20
		srv.SetInitial(k, load[k])
		keys[k] = k
	}

	cli, err := apcache.Dial(addr.String(), nodes)
	if err != nil {
		panic(err)
	}
	defer cli.Close()

	total, err := cli.WatchQuery(apcache.Sum, 8, keys...)
	if err != nil {
		panic(err)
	}
	hottest, err := cli.WatchQuery(apcache.Max, 2, keys...)
	if err != nil {
		panic(err)
	}
	fmt.Printf("watching SUM and MAX over %d nodes on %s\n\n", nodes, addr)

	// Consume both answer streams as they arrive; the consumers below never
	// query — every line was pushed by the server because the standing
	// answer moved.
	var wg sync.WaitGroup
	consume := func(name string, w *apcache.Watch, count *int) {
		defer wg.Done()
		for u := range w.Updates() {
			*count++
			if *count%10 == 1 {
				fmt.Printf("%-12s %7.2f +/- %.2f\n", name, u.Value, u.Interval.Width()/2)
			}
		}
	}
	var sums, maxes int
	wg.Add(2)
	go consume("total load", total, &sums)
	go consume("hottest node", hottest, &maxes)

	// Load drifts; one node spikes halfway through. The adaptive budget
	// re-split shifts precision toward the spiking key, so the quiet nodes'
	// wider shares keep the total update rate down.
	for t := 0; t < ticks; t++ {
		for k := range load {
			load[k] += rng.NormFloat64() * 0.6
			if k == 3 && t >= ticks/2 {
				load[k] += 1.5
			}
			srv.Set(k, load[k])
		}
		time.Sleep(2 * time.Millisecond) // let pushes propagate
	}
	total.Close()
	hottest.Close()
	wg.Wait()
	fmt.Printf("\n%d SUM updates, %d MAX updates pushed for %d source ticks\n",
		sums, maxes, ticks*nodes)
}
