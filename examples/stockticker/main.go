// Stockticker runs the full networked deployment in one process: a TCP
// server hosts fluctuating "prices", pushes value-initiated refreshes when a
// price escapes its cached interval, and a cache client values a portfolio
// (a SUM query with a precision constraint) against its local intervals,
// fetching exact prices only when the cached precision is insufficient.
//
// Run with:
//
//	go run ./examples/stockticker
package main

import (
	"fmt"
	"math/rand"
	"time"

	"apcache"
)

const (
	symbols   = 8
	rounds    = 20
	portfolio = 5 // symbols per valuation query
)

func main() {
	srv, addr, err := apcache.Serve("127.0.0.1:0", apcache.ServerConfig{
		Params:       apcache.DefaultParams(1, 2, 0.01),
		InitialWidth: 2,
		Seed:         1,
	})
	if err != nil {
		panic(err)
	}
	defer srv.Close()

	// Seed prices.
	rng := rand.New(rand.NewSource(2))
	prices := make([]float64, symbols)
	for k := range prices {
		prices[k] = 50 + rng.Float64()*100
		srv.SetInitial(k, prices[k])
	}

	cli, err := apcache.Dial(addr.String(), symbols)
	if err != nil {
		panic(err)
	}
	defer cli.Close()
	for k := 0; k < symbols; k++ {
		if err := cli.Subscribe(k); err != nil {
			panic(err)
		}
	}
	fmt.Printf("ticker serving %d symbols on %s\n\n", symbols, addr)

	// Market loop: prices jitter every tick; every few ticks the client
	// values a random portfolio with a precision constraint of $2.
	for round := 0; round < rounds; round++ {
		for tick := 0; tick < 5; tick++ {
			for k := range prices {
				prices[k] += rng.NormFloat64() * 0.8
				srv.Set(k, prices[k])
			}
			time.Sleep(2 * time.Millisecond) // let pushes propagate
		}
		keys := rng.Perm(symbols)[:portfolio]
		ans, err := cli.Query(apcache.Query{Kind: apcache.Sum, Keys: keys, Delta: 2})
		if err != nil {
			panic(err)
		}
		fmt.Printf("round %2d: portfolio %v valued at $%.2f +/- $%.2f (fetched %d of %d quotes)\n",
			round+1, keys, ans.Estimate(), ans.Result.Width()/2, len(ans.Refreshed), portfolio)
	}

	st := cli.Stats()
	fmt.Printf("\nrefreshes: %d pushed by server (value-initiated), %d fetched by client (query-initiated)\n",
		st.ValueRefreshes, st.QueryRefreshes)
	fmt.Printf("cache hit rate: %.0f%%\n",
		100*float64(st.Cache.Hits)/float64(st.Cache.Hits+st.Cache.Misses))
}
