// Quickstart: cache a handful of numeric values as adaptive-precision
// intervals, watch the widths adapt to update and query pressure, and run
// bounded-aggregate queries against the cache.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"math/rand"

	"apcache"
)

func main() {
	store, err := apcache.NewStore(apcache.Options{
		// Cvr=1 (update push), Cqr=2 (request+response), lambda0=0.01.
		Params:       apcache.DefaultParams(1, 2, 0.01),
		InitialWidth: 4,
		Seed:         7,
		Shards:       1, // pin the layout so the fixed seed reproduces everywhere
	})
	if err != nil {
		panic(err)
	}

	// Track three sensors starting at known values.
	for key, v := range []float64{20, 50, 80} {
		store.Track(key, v)
	}

	fmt.Println("-- initial approximations --")
	for key := 0; key < 3; key++ {
		iv, _ := store.Get(key)
		fmt.Printf("sensor %d cached as %v (width %.3g)\n", key, iv, iv.Width())
	}

	// Sensor 0 fluctuates wildly: its interval should widen so that most
	// updates stay inside it.
	rng := rand.New(rand.NewSource(1))
	v := 20.0
	for i := 0; i < 200; i++ {
		v += rng.Float64()*10 - 5
		store.Set(0, v)
	}
	// Sensor 2 is queried for exact values repeatedly: its interval should
	// narrow.
	for i := 0; i < 6; i++ {
		if _, err := store.ReadExact(2); err != nil {
			panic(err)
		}
	}

	fmt.Println("\n-- after update pressure on 0 and query pressure on 2 --")
	for key := 0; key < 3; key++ {
		iv, _ := store.Get(key)
		fmt.Printf("sensor %d cached as %v (width %.3g)\n", key, iv, iv.Width())
	}

	// Bounded-aggregate queries: the cache answers as much as the
	// precision constraint allows and fetches the rest.
	loose, _ := store.Do(apcache.Query{Kind: apcache.Sum, Keys: []int{0, 1, 2}, Delta: 100})
	fmt.Printf("\nSUM with delta=100: %v, fetched %d values\n", loose.Result, len(loose.Refreshed))

	tight, _ := store.Do(apcache.Query{Kind: apcache.Sum, Keys: []int{0, 1, 2}, Delta: 1})
	fmt.Printf("SUM with delta=1:   %v, fetched %d values\n", tight.Result, len(tight.Refreshed))

	exactMax, _ := store.Do(apcache.Query{Kind: apcache.Max, Keys: []int{0, 1, 2}, Delta: 0})
	fmt.Printf("exact MAX:          %v, fetched %d values (interval endpoints eliminate candidates)\n",
		exactMax.Result, len(exactMax.Refreshed))

	st := store.Stats()
	fmt.Printf("\ntotals: %d value-initiated, %d query-initiated refreshes, cost %.4g\n",
		st.ValueRefreshes, st.QueryRefreshes, st.Cost)
}
