// Netmonitor reproduces the paper's motivating application: a monitoring
// station caches per-host traffic levels as interval approximations and
// answers "total traffic over these hosts" (SUM) and "most loaded host"
// (MAX) queries with precision guarantees, while the hosts' levels replay a
// bursty wide-area traffic trace.
//
// The example runs the same scenario twice — once with the upper threshold
// lambda1 = lambda0 (exact caching special case) and once with lambda1 = inf
// (full adaptive precision) — and prints the refresh-cost comparison, the
// shape behind Figures 7-11 of the paper.
//
// A third run replays the adaptive-precision scenario over loopback TCP
// with the batched v2 wire protocol (Hello handshake, ReadMulti query
// fetches, coalesced push batches), printing the frame counts so the
// batching is visible: frames stay far below the refresh/fetch totals. The
// networked run also demonstrates the API v1 surface: queries run under a
// context deadline via QueryCtx, and a Watch stream observes the pushed
// refreshes of the four busiest hosts — the monitoring dashboard the
// paper's scenario implies, without polling. Halfway through the replay the
// server is killed and restarted: the client's ReconnectPolicy redials,
// replays all subscriptions, and the Watch stream reports the outage as
// Disconnected/Reconnected events instead of dying.
//
// Run with:
//
//	go run ./examples/netmonitor
package main

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"

	"apcache"
	"apcache/internal/trace"
)

const (
	hosts    = 20
	duration = 900 // seconds of trace to replay
	tq       = 1   // seconds between queries
	davg     = 50_000
	cvr, cqr = 1.0, 2.0
)

func main() {
	tr, err := trace.Generate(trace.Config{
		Hosts: hosts * 2, Duration: duration, Window: 60,
		MaxRate: trace.DefaultMaxRate, Seed: 11,
	})
	if err != nil {
		panic(err)
	}
	top := tr.TopN(hosts)

	fmt.Printf("replaying %d hosts x %d seconds of synthetic wide-area traffic\n\n", hosts, duration)
	for _, setting := range []struct {
		name    string
		lambda1 float64
	}{
		{"lambda1 = lambda0 (exact-or-nothing)", 1000},
		{"lambda1 = inf (adaptive precision)", math.Inf(1)},
	} {
		cost := runScenario(top, setting.lambda1)
		fmt.Printf("%-40s cost rate %.4g per second\n", setting.name, cost)
	}
	fmt.Println("\nwith davg > 0 the adaptive-precision setting should win (paper Figs 10-11)")

	fmt.Println()
	runNetworked(top)
}

// runScenario replays the trace against one cache configuration and returns
// the average refresh cost per simulated second.
func runScenario(tr *trace.Trace, lambda1 float64) float64 {
	store, err := apcache.NewStore(apcache.Options{
		Params: apcache.Params{
			Cvr: cvr, Cqr: cqr, Alpha: 1,
			Lambda0: 1000, Lambda1: lambda1,
		},
		InitialWidth: 10_000,
		Seed:         3,
		Shards:       1, // single-threaded replay; sharding would only split the cache
	})
	if err != nil {
		panic(err)
	}
	for h := 0; h < tr.Hosts(); h++ {
		store.Track(h, tr.Host(h)[0])
	}

	rng := rand.New(rand.NewSource(5))
	queries := 0
	for t := 1; t < tr.Duration(); t++ {
		for h := 0; h < tr.Hosts(); h++ {
			store.Set(h, tr.Host(h)[t])
		}
		if t%tq == 0 {
			// Alternate SUM and MAX over 10 random hosts.
			keys := rng.Perm(tr.Hosts())[:10]
			kind := apcache.Sum
			if queries%2 == 1 {
				kind = apcache.Max
			}
			delta := davg * (0.5 + rng.Float64()) // sigma = 0.5
			if _, err := store.Do(apcache.Query{Kind: kind, Keys: keys, Delta: delta}); err != nil {
				panic(err)
			}
			queries++
		}
	}
	st := store.Stats()
	return st.Cost / float64(tr.Duration())
}

// runNetworked replays the adaptive-precision scenario with the monitoring
// station and the hosts on opposite ends of a TCP connection, using the
// batched v2 protocol: one SubscribeMulti registers every host, each query's
// refresh set travels as one ReadMulti, and bursts of value-initiated pushes
// coalesce into RefreshBatch frames inside the adaptive flush window
// (FlushInterval caps the window; the per-connection EWMA of push gaps
// shrinks it so sparse pushes flush immediately).
func runNetworked(tr *trace.Trace) {
	srv, addr, err := serveHosts("127.0.0.1:0", tr, 0)
	if err != nil {
		panic(err)
	}
	defer func() { srv.Close() }() // closure: srv is swapped by the mid-replay restart

	c, err := apcache.DialConfig(addr, apcache.ClientConfig{
		CacheSize: tr.Hosts(),
		MaxBatch:  128,
		// Survive the mid-replay restart below: redial with backoff and
		// replay every subscription against the replacement server.
		Reconnect: apcache.ReconnectPolicy{
			Enabled:   true,
			BaseDelay: 5 * time.Millisecond,
			MaxDelay:  100 * time.Millisecond,
		},
	})
	if err != nil {
		panic(err)
	}
	defer c.Close()
	all := make([]int, tr.Hosts())
	for h := range all {
		all[h] = h
	}
	if err := c.SubscribeMulti(all); err != nil {
		panic(err)
	}

	// Watch the four busiest hosts (the trace is sorted by total traffic):
	// every pushed refresh for them streams to this handle, with per-key
	// latest-wins coalescing if we fall behind.
	w, err := c.Watch(0, 1, 2, 3)
	if err != nil {
		panic(err)
	}
	type watchTally struct{ refreshes, events int }
	observed := make(chan watchTally, 1)
	go func() {
		var tally watchTally
		for u := range w.Updates() {
			if u.Event != apcache.EventRefresh {
				tally.events++ // Disconnected/Reconnected around the restart
			} else {
				tally.refreshes++
			}
		}
		observed <- tally
	}()

	rng := rand.New(rand.NewSource(5))
	queries, lost := 0, 0
	restartAt := tr.Duration() / 2
	for t := 1; t < tr.Duration(); t++ {
		if t == restartAt {
			// Kill the server mid-replay and bring a replacement up on the
			// same port, seeded with the trace's current values. The client
			// is none the wiser: its redial loop replays the subscriptions.
			prev := c.Stats().Reconnects
			srv.Close()
			srv = mustRestart(addr, tr, t)
			for waited := 0; c.Stats().Reconnects <= prev; waited++ {
				if waited > 5000 {
					panic("client never reconnected to the restarted server")
				}
				time.Sleep(2 * time.Millisecond)
			}
		}
		for h := 0; h < tr.Hosts(); h++ {
			srv.Set(h, tr.Host(h)[t])
		}
		if t%tq == 0 {
			keys := rng.Perm(tr.Hosts())[:10]
			kind := apcache.Sum
			if queries%2 == 1 {
				kind = apcache.Max
			}
			delta := davg * (0.5 + rng.Float64())
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			_, err := c.QueryCtx(ctx, apcache.Query{Kind: kind, Keys: keys, Delta: delta})
			cancel()
			if err != nil {
				if errors.Is(err, apcache.ErrConnLost) {
					lost++ // outage window: the redial loop owns recovery
					continue
				}
				panic(err)
			}
			queries++
		}
	}
	w.Close()
	watched := <-observed
	st := c.Stats()
	cost := float64(st.ValueRefreshes)*cvr + float64(st.QueryRefreshes)*cqr
	fmt.Printf("networked (batched v%d protocol)          cost rate %.4g per second\n",
		c.Proto(), cost/float64(tr.Duration()))
	fmt.Printf("  %d refreshes (%d pushed, %d fetched) crossed the wire in %d frames received / %d sent\n",
		st.ValueRefreshes+st.QueryRefreshes, st.ValueRefreshes, st.QueryRefreshes,
		st.FramesReceived, st.FramesSent)
	fmt.Printf("  the Watch over the 4 busiest hosts streamed %d updates (%d coalesced latest-wins)\n",
		watched.refreshes, w.Coalesced())
	fmt.Printf("  survived a mid-replay server restart: %d reconnect(s), %d queries lost to the outage, %d connectivity events on the Watch\n",
		st.Reconnects, lost, watched.events)
}

// serveHosts starts a server on addr seeded with every host's traffic level
// at trace second t, returning the bound address as a string.
func serveHosts(addr string, tr *trace.Trace, t int) (*apcache.Server, string, error) {
	srv, bound, err := apcache.Serve(addr, apcache.ServerConfig{
		Params: apcache.Params{
			Cvr: cvr, Cqr: cqr, Alpha: 1,
			Lambda0: 1000, Lambda1: math.Inf(1),
		},
		InitialWidth:  10_000,
		Seed:          3,
		MaxBatch:      128,
		FlushInterval: time.Millisecond,
	})
	if err != nil {
		return nil, "", err
	}
	for h := 0; h < tr.Hosts(); h++ {
		srv.SetInitial(h, tr.Host(h)[t])
	}
	return srv, bound.String(), nil
}

// mustRestart rebinds a replacement server on the address the dead one
// held, retrying briefly while the kernel releases the port.
func mustRestart(addr string, tr *trace.Trace, t int) *apcache.Server {
	var lastErr error
	for attempt := 0; attempt < 200; attempt++ {
		srv, _, err := serveHosts(addr, tr, t)
		if err == nil {
			return srv
		}
		lastErr = err
		time.Sleep(5 * time.Millisecond)
	}
	panic(lastErr)
}
