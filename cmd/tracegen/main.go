// Command tracegen generates the synthetic network-monitoring traces that
// substitute for the Paxson/Floyd wide-area traffic data (see
// internal/trace) and writes them as CSV.
//
// Usage:
//
//	tracegen -hosts 50 -duration 7200 -seed 1 -o trace.csv
//	tracegen -top 50 ...     # keep only the most trafficked hosts
package main

import (
	"flag"
	"fmt"
	"os"

	"apcache/internal/trace"
)

func main() {
	var (
		hosts    = flag.Int("hosts", 50, "number of hosts to simulate")
		duration = flag.Int("duration", 7200, "trace length in seconds")
		window   = flag.Int("window", 60, "moving-average window in seconds")
		maxRate  = flag.Float64("maxrate", trace.DefaultMaxRate, "peak traffic level (bytes/second)")
		seed     = flag.Int64("seed", 1, "random seed")
		top      = flag.Int("top", 0, "keep only the N most trafficked hosts (0 = all)")
		out      = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	cfg := trace.Config{
		Hosts:    *hosts,
		Duration: *duration,
		Window:   *window,
		MaxRate:  *maxRate,
		Seed:     *seed,
	}
	tr, err := trace.Generate(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		os.Exit(1)
	}
	if *top > 0 {
		if *top > tr.Hosts() {
			fmt.Fprintf(os.Stderr, "tracegen: -top %d exceeds -hosts %d\n", *top, *hosts)
			os.Exit(2)
		}
		tr = tr.TopN(*top)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := tr.WriteCSV(w); err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		os.Exit(1)
	}
}
