package main

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"apcache/internal/bench"
)

// TestRunOnePrintsReport exercises the rendering path against a cheap
// experiment.
func TestRunOnePrintsReport(t *testing.T) {
	e, ok := bench.Get("fig2")
	if !ok {
		t.Fatalf("fig2 missing")
	}
	// Capture stdout.
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := runOne(e, bench.Options{Quick: true, Seed: 1})
	w.Close()
	os.Stdout = old
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(r); err != nil {
		t.Fatal(err)
	}
	if runErr != nil {
		t.Fatalf("runOne: %v", runErr)
	}
	out := buf.String()
	for _, want := range []string{"fig2", "Pvr", "Omega", "note:"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
