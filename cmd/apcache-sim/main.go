// Command apcache-sim runs the paper-reproduction experiments: every figure
// and in-text table of the SIGMOD 2001 performance study has a registered
// experiment id.
//
// Usage:
//
//	apcache-sim -list
//	apcache-sim -experiment fig3 [-quick] [-seed 42]
//	apcache-sim -all [-quick]
package main

import (
	"flag"
	"fmt"
	"os"

	"apcache/internal/bench"
)

func main() {
	var (
		list  = flag.Bool("list", false, "list available experiments")
		expID = flag.String("experiment", "", "experiment id to run (see -list)")
		all   = flag.Bool("all", false, "run every experiment")
		quick = flag.Bool("quick", false, "shorter runs: same shapes, less precision")
		seed  = flag.Int64("seed", 42, "random seed")
	)
	flag.Parse()

	switch {
	case *list:
		for _, e := range bench.All() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
			fmt.Printf("%-10s   paper: %s\n", "", e.Paper)
		}
	case *all:
		for _, e := range bench.All() {
			if err := runOne(e, bench.Options{Quick: *quick, Seed: *seed}); err != nil {
				fmt.Fprintf(os.Stderr, "apcache-sim: %s: %v\n", e.ID, err)
				os.Exit(1)
			}
		}
	case *expID != "":
		e, ok := bench.Get(*expID)
		if !ok {
			fmt.Fprintf(os.Stderr, "apcache-sim: unknown experiment %q (try -list)\n", *expID)
			os.Exit(2)
		}
		if err := runOne(e, bench.Options{Quick: *quick, Seed: *seed}); err != nil {
			fmt.Fprintf(os.Stderr, "apcache-sim: %v\n", err)
			os.Exit(1)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func runOne(e *bench.Experiment, opt bench.Options) error {
	fmt.Printf("== %s — %s ==\n", e.ID, e.Title)
	fmt.Printf("paper: %s\n\n", e.Paper)
	rep, err := e.Run(opt)
	if err != nil {
		return err
	}
	for _, tb := range rep.Tables {
		fmt.Println(tb.String())
	}
	for _, ch := range rep.Charts {
		fmt.Println(ch.String())
	}
	for _, n := range rep.Notes {
		fmt.Printf("note: %s\n", n)
	}
	fmt.Println()
	return nil
}
