// Command apcache-server hosts numeric source values over TCP, feeding them
// with synthetic updates (random walks or a recorded trace) and serving
// approximate-cache clients with adaptively sized interval approximations.
//
// Usage:
//
//	apcache-server -addr :7070 -keys 50                # random walks
//	apcache-server -addr :7070 -trace trace.csv        # trace playback
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"
	"os"
	"os/signal"
	"syscall"
	"time"

	"apcache/internal/core"
	"apcache/internal/server"
	"apcache/internal/trace"
	"apcache/internal/wal"
	"apcache/internal/workload"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:7070", "listen address")
		keys      = flag.Int("keys", 50, "number of source values (random-walk mode)")
		traceFile = flag.String("trace", "", "CSV trace to play back instead of random walks")
		stepLo    = flag.Float64("steplo", 0.5, "random walk minimum step")
		stepHi    = flag.Float64("stephi", 1.5, "random walk maximum step")
		period    = flag.Duration("period", time.Second, "update period")
		cvr       = flag.Float64("cvr", 1, "value-initiated refresh cost")
		cqr       = flag.Float64("cqr", 2, "query-initiated refresh cost")
		alpha     = flag.Float64("alpha", 1, "adaptivity parameter")
		lambda0   = flag.Float64("lambda0", 0, "lower width threshold")
		width     = flag.Float64("width", 10, "initial interval width")
		seed      = flag.Int64("seed", 1, "random seed")
		shards    = flag.Int("shards", 0, "lock shards for the key space (0 = GOMAXPROCS-scaled, rounded to a power of two)")
		maxBatch  = flag.Int("maxbatch", 0, "max messages per batch frame (0 = default 128)")
		flush     = flag.Duration("maxflush", 2*time.Millisecond, "cap on the adaptive per-connection push-coalescing window (0 = always flush immediately)")
		protoVer  = flag.Int("protover", 0, "cap the wire protocol: 1 = v1 single frames, 2 = batched v2, 0/3 = v3 with structured errors")
		connMode  = flag.String("connmode", "", "connection core: 'goroutine' (default; two goroutines per connection) or 'poller' (event-driven, shared loops + writer pool)")
		drain     = flag.Duration("drain", 5*time.Second, "graceful-drain bound on SIGTERM/interrupt: flush queued pushes before closing connections (0 = close immediately)")
		walDir    = flag.String("wal", "", "write-ahead log directory: journal values and learned widths, recover them on restart (empty = not durable)")
		fsync     = flag.String("fsync", "interval", "WAL fsync policy: 'always' (every write waits for fsync), 'interval' (group-commit window), or 'none' (OS decides)")
	)
	flag.Parse()

	fsyncPolicy, err := wal.ParsePolicy(*fsync)
	if err != nil {
		log.Fatalf("apcache-server: %v", err)
	}
	srv, err := server.Open(server.Config{
		Params: core.Params{
			Cvr: *cvr, Cqr: *cqr, Alpha: *alpha,
			Lambda0: *lambda0, Lambda1: math.Inf(1),
		},
		InitialWidth:  *width,
		Seed:          *seed,
		Shards:        *shards,
		MaxBatch:      *maxBatch,
		FlushInterval: *flush,
		ProtoVersion:  *protoVer,
		ConnMode:      *connMode,
		WALDir:        *walDir,
		WALFsync:      fsyncPolicy,
		Logf:          log.Printf,
	})
	if err != nil {
		log.Fatalf("apcache-server: %v", err)
	}

	var updates []workload.UpdateSource
	rng := rand.New(rand.NewSource(*seed))
	if *traceFile != "" {
		f, err := os.Open(*traceFile)
		if err != nil {
			log.Fatalf("apcache-server: %v", err)
		}
		tr, err := trace.ReadCSV(f)
		f.Close()
		if err != nil {
			log.Fatalf("apcache-server: %v", err)
		}
		for h := 0; h < tr.Hosts(); h++ {
			updates = append(updates, workload.NewPlayback(tr.Host(h)))
		}
	} else {
		for k := 0; k < *keys; k++ {
			updates = append(updates, workload.NewRandomWalk(0, *stepLo, *stepHi, rng))
		}
	}
	recovered := 0
	for k, u := range updates {
		// A durable server recovered journaled keys already; seed only the
		// ones the journal did not carry, so a restart resumes the learned
		// state instead of resetting the walks.
		if _, ok := srv.Value(k); ok {
			recovered++
			continue
		}
		srv.SetInitial(k, u.Value())
	}

	bound, err := srv.Listen(*addr)
	if err != nil {
		log.Fatalf("apcache-server: %v", err)
	}
	if *walDir != "" {
		log.Printf("write-ahead log at %s (fsync=%s), %d keys recovered", *walDir, fsyncPolicy, recovered)
	}
	log.Printf("serving %d keys on %s (%s connection core, update period %v)", len(updates), bound, srv.ConnMode(), *period)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	ticker := time.NewTicker(*period)
	defer ticker.Stop()
	var pushes, ticks int
	for {
		select {
		case <-ticker.C:
			ticks++
			for k, u := range updates {
				pushes += srv.Set(k, u.Step())
			}
			if ticks%60 == 0 {
				log.Printf("t=%ds clients=%d refreshes-pushed=%d", ticks, srv.Clients(), pushes)
			}
		case <-stop:
			fmt.Println()
			st := srv.Stats()
			log.Printf("shutting down: %d updates applied, %d refreshes pushed (%d parked on congestion, %d merged), measured refresh cost %v",
				ticks*len(updates), pushes, st.PushOverflows, st.PushMerges, st.RefreshCost)
			if *drain > 0 {
				ctx, cancel := context.WithTimeout(context.Background(), *drain)
				if err := srv.Shutdown(ctx); err != nil {
					log.Printf("drain incomplete after %v: %v", *drain, err)
				}
				cancel()
			} else {
				srv.Close()
			}
			return
		}
	}
}
