// Command apcache-client connects to an apcache-server, subscribes to its
// keys, and runs the paper's bounded-aggregate query workload against the
// local approximate cache, reporting refresh counts and effective cost.
//
// Usage:
//
//	apcache-client -addr 127.0.0.1:7070 -keys 50 -tq 1s -davg 100 -queries 100
package main

import (
	"flag"
	"log"
	"math/rand"
	"time"

	"apcache/internal/client"
	"apcache/internal/workload"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7070", "server address")
		keys     = flag.Int("keys", 50, "number of keys hosted by the server")
		perQuery = flag.Int("perquery", 10, "keys touched per query")
		cacheSz  = flag.Int("cache", 0, "cache capacity (0 = all keys)")
		tq       = flag.Duration("tq", time.Second, "query period")
		davg     = flag.Float64("davg", 100, "average precision constraint")
		sigma    = flag.Float64("sigma", 1, "precision constraint variation in [0,1]")
		queries  = flag.Int("queries", 100, "number of queries to run (0 = forever)")
		useMax   = flag.Bool("max", false, "run MAX queries instead of SUM")
		cvr      = flag.Float64("cvr", 1, "value-initiated refresh cost (for reporting)")
		cqr      = flag.Float64("cqr", 2, "query-initiated refresh cost (for reporting)")
		seed     = flag.Int64("seed", 1, "random seed")
		maxBatch = flag.Int("maxbatch", 0, "max messages per batch frame (0 = default 128)")
		protoVer = flag.Int("protover", 0, "pin the wire protocol: 1 = v1 single frames, 0/2 = negotiate batched v2")
		timeout  = flag.Duration("timeout", 0, "per-request timeout (0 = default 10s)")
		ramp     = flag.Float64("ramp", 0, "MAX/MIN batched refinement ramp factor (0 = default 2, 1 = paper-minimal)")
	)
	flag.Parse()

	size := *cacheSz
	if size <= 0 {
		size = *keys
	}
	c, err := client.DialConfig(*addr, client.Config{
		CacheSize:    size,
		MaxBatch:     *maxBatch,
		ProtoVersion: *protoVer,
		Timeout:      *timeout,
		RampFactor:   *ramp,
	})
	if err != nil {
		log.Fatalf("apcache-client: %v", err)
	}
	defer c.Close()
	all := make([]int, *keys)
	for k := range all {
		all[k] = k
	}
	if err := c.SubscribeMulti(all); err != nil {
		log.Fatalf("apcache-client: subscribe: %v", err)
	}
	log.Printf("subscribed to %d keys (protocol v%d); querying every %v", *keys, c.Proto(), *tq)

	kind := workload.Sum
	if *useMax {
		kind = workload.Max
	}
	gen := &workload.QueryGen{
		Kinds:        []workload.AggKind{kind},
		NumSources:   *keys,
		KeysPerQuery: *perQuery,
		Constraints:  workload.ConstraintDist{Avg: *davg, Sigma: *sigma},
		RNG:          rand.New(rand.NewSource(*seed)),
	}
	if err := gen.Validate(); err != nil {
		log.Fatalf("apcache-client: %v", err)
	}

	start := time.Now()
	ticker := time.NewTicker(*tq)
	defer ticker.Stop()
	for n := 0; *queries == 0 || n < *queries; n++ {
		<-ticker.C
		q := gen.Next()
		ans, err := c.Query(q)
		if err != nil {
			log.Fatalf("apcache-client: query: %v", err)
		}
		if (n+1)%10 == 0 {
			st := c.Stats()
			elapsed := time.Since(start).Seconds()
			cost := float64(st.ValueRefreshes)*(*cvr) + float64(st.QueryRefreshes)*(*cqr)
			log.Printf("q#%d %s(%d keys) delta=%.3g -> %v (fetched %d); VIR=%d QIR=%d cost-rate=%.4g/s",
				n+1, q.Kind, len(q.Keys), q.Delta, ans.Result, len(ans.Refreshed),
				st.ValueRefreshes, st.QueryRefreshes, cost/elapsed)
		}
	}
	st := c.Stats()
	cost := float64(st.ValueRefreshes)*(*cvr) + float64(st.QueryRefreshes)*(*cqr)
	log.Printf("done: VIR=%d QIR=%d total-cost=%.4g hit-rate=%.2f frames-sent=%d frames-recv=%d",
		st.ValueRefreshes, st.QueryRefreshes, cost,
		float64(st.Cache.Hits)/float64(st.Cache.Hits+st.Cache.Misses+1),
		st.FramesSent, st.FramesReceived)
}
