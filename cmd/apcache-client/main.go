// Command apcache-client connects to an apcache-server, subscribes to its
// keys, and runs the paper's bounded-aggregate query workload against the
// local approximate cache, reporting refresh counts and effective cost.
//
// Usage:
//
//	apcache-client -addr 127.0.0.1:7070 -keys 50 -tq 1s -davg 100 -queries 100
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"math/rand"
	"time"

	"apcache/internal/aperrs"
	"apcache/internal/client"
	"apcache/internal/watch"
	"apcache/internal/workload"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7070", "server address")
		keys     = flag.Int("keys", 50, "number of keys hosted by the server")
		perQuery = flag.Int("perquery", 10, "keys touched per query")
		cacheSz  = flag.Int("cache", 0, "cache capacity (0 = all keys)")
		tq       = flag.Duration("tq", time.Second, "query period")
		davg     = flag.Float64("davg", 100, "average precision constraint")
		sigma    = flag.Float64("sigma", 1, "precision constraint variation in [0,1]")
		queries  = flag.Int("queries", 100, "number of queries to run (0 = forever)")
		useMax   = flag.Bool("max", false, "run MAX queries instead of SUM")
		cvr      = flag.Float64("cvr", 1, "value-initiated refresh cost (for reporting)")
		cqr      = flag.Float64("cqr", 2, "query-initiated refresh cost (for reporting)")
		seed     = flag.Int64("seed", 1, "random seed")
		maxBatch = flag.Int("maxbatch", 0, "max messages per batch frame (0 = default 128)")
		protoVer = flag.Int("protover", 0, "cap the wire protocol: 1 = v1 single frames, 2 = batched v2, 3 = v3 with structured errors, 0/4 = v4 with continuous queries")
		timeout  = flag.Duration("timeout", 0, "per-request timeout (0 = default 10s)")
		ramp     = flag.Float64("ramp", 0, "MAX/MIN batched refinement ramp factor (0 = adaptive from measured RTT, 1 = paper-minimal)")
		cqrCost  = flag.Duration("cqrcost", 0, "modeled per-key refresh cost for the adaptive ramp (0 = default 100µs)")
		qlimit   = flag.Duration("qdeadline", 0, "per-query context deadline (0 = client default timeout only)")
		reconn   = flag.Bool("reconnect", false, "survive server restarts: redial with backoff and replay subscriptions")
		stale    = flag.Float64("stale", 0, "serve cached reads during outages, widening intervals at this rate (units/s); 0 = fail instead (requires -reconnect)")
		watchQ   = flag.Bool("watch", false, "register one standing continuous query over -perquery keys with delta -davg (SUM, or MAX with -max) and stream its answers instead of running the poll workload")
	)
	flag.Parse()

	size := *cacheSz
	if size <= 0 {
		size = *keys
	}
	c, err := client.DialConfig(*addr, client.Config{
		CacheSize:        size,
		MaxBatch:         *maxBatch,
		ProtoVersion:     *protoVer,
		Timeout:          *timeout,
		RampFactor:       *ramp,
		CqrCost:          *cqrCost,
		Reconnect:        client.ReconnectPolicy{Enabled: *reconn},
		StaleReads:       *stale > 0,
		StaleWidthGrowth: *stale,
	})
	if err != nil {
		log.Fatalf("apcache-client: %v", err)
	}
	defer c.Close()
	all := make([]int, *keys)
	for k := range all {
		all[k] = k
	}
	if err := c.SubscribeMulti(all); err != nil {
		log.Fatalf("apcache-client: subscribe: %v", err)
	}
	log.Printf("subscribed to %d keys (protocol v%d); querying every %v", *keys, c.Proto(), *tq)

	kind := workload.Sum
	if *useMax {
		kind = workload.Max
	}
	if *watchQ {
		runWatchQuery(c, kind, *davg, min(*perQuery, *keys), *queries, *cvr, *cqr)
		return
	}
	gen := &workload.QueryGen{
		Kinds:        []workload.AggKind{kind},
		NumSources:   *keys,
		KeysPerQuery: *perQuery,
		Constraints:  workload.ConstraintDist{Avg: *davg, Sigma: *sigma},
		RNG:          rand.New(rand.NewSource(*seed)),
	}
	if err := gen.Validate(); err != nil {
		log.Fatalf("apcache-client: %v", err)
	}

	start := time.Now()
	ticker := time.NewTicker(*tq)
	defer ticker.Stop()
	for n := 0; *queries == 0 || n < *queries; n++ {
		<-ticker.C
		q := gen.Next()
		ctx := context.Background()
		cancel := context.CancelFunc(func() {})
		if *qlimit > 0 {
			ctx, cancel = context.WithTimeout(ctx, *qlimit)
		}
		ans, err := c.QueryCtx(ctx, q)
		cancel()
		if err != nil {
			if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, aperrs.ErrTimeout) {
				log.Printf("apcache-client: query #%d timed out: %v", n+1, err)
				continue
			}
			if *reconn && errors.Is(err, aperrs.ErrConnLost) {
				// The redial loop owns recovery; queries resume once the
				// replayed subscriptions land.
				log.Printf("apcache-client: query #%d lost the connection (reconnecting): %v", n+1, err)
				continue
			}
			log.Fatalf("apcache-client: query: %v", err)
		}
		if (n+1)%10 == 0 {
			st := c.Stats()
			elapsed := time.Since(start).Seconds()
			cost := float64(st.ValueRefreshes)*(*cvr) + float64(st.QueryRefreshes)*(*cqr)
			log.Printf("q#%d %s(%d keys) delta=%.3g -> %v (fetched %d); VIR=%d QIR=%d cost-rate=%.4g/s",
				n+1, q.Kind, len(q.Keys), q.Delta, ans.Result, len(ans.Refreshed),
				st.ValueRefreshes, st.QueryRefreshes, cost/elapsed)
		}
	}
	st := c.Stats()
	cost := float64(st.ValueRefreshes)*(*cvr) + float64(st.QueryRefreshes)*(*cqr)
	log.Printf("done: VIR=%d QIR=%d total-cost=%.4g hit-rate=%.2f frames-sent=%d frames-recv=%d rtt=%v server-cqr-cost=%v reconnects=%d",
		st.ValueRefreshes, st.QueryRefreshes, cost,
		float64(st.Cache.Hits)/float64(st.Cache.Hits+st.Cache.Misses+1),
		st.FramesSent, st.FramesReceived, st.SmoothedRTT, st.ServerCqrCost, st.Reconnects)
}

// runWatchQuery registers one standing bounded aggregate over the first n
// keys and streams its answers: the server maintains the aggregate
// incrementally and emits an update only when the answer interval changes,
// so the client does no per-update query work at all.
func runWatchQuery(c *client.Client, kind workload.AggKind, delta float64, n, limit int, cvr, cqr float64) {
	ks := make([]int, n)
	for k := range ks {
		ks[k] = k
	}
	w, err := c.WatchQuery(kind, delta, ks...)
	if err != nil {
		if errors.Is(err, aperrs.ErrQueryUnsupported) {
			log.Fatalf("apcache-client: server negotiated protocol v%d, below v4: %v", c.Proto(), err)
		}
		log.Fatalf("apcache-client: watch query: %v", err)
	}
	defer w.Close()
	log.Printf("standing %s(%d keys) delta=%.3g registered; streaming answers", kind, n, delta)
	start := time.Now()
	seen := 0
	for u := range w.Updates() {
		switch u.Event {
		case watch.EventDisconnected:
			log.Printf("apcache-client: connection lost; awaiting replay")
			continue
		case watch.EventReconnected:
			log.Printf("apcache-client: reconnected; standing query replayed")
			continue
		}
		seen++
		if seen%10 == 0 || seen == 1 {
			st := c.Stats()
			cost := float64(st.ValueRefreshes)*cvr + float64(st.QueryRefreshes)*cqr
			log.Printf("u#%d %s -> [%.6g, %.6g] center=%.6g; frames-recv=%d cost-rate=%.4g/s",
				seen, kind, u.Interval.Lo, u.Interval.Hi, u.Value,
				st.FramesReceived, cost/time.Since(start).Seconds())
		}
		if limit != 0 && seen >= limit {
			break
		}
	}
	if err := w.Err(); err != nil && seen == 0 {
		log.Fatalf("apcache-client: watch query stream: %v", err)
	}
	st := c.Stats()
	log.Printf("done: %d answers, frames-sent=%d frames-recv=%d tagged-pushes=%d reconnects=%d",
		seen, st.FramesSent, st.FramesReceived, st.TaggedPushes, st.Reconnects)
}
