// Command apcache-client connects to an apcache-server, subscribes to its
// keys, and runs the paper's bounded-aggregate query workload against the
// local approximate cache, reporting refresh counts and effective cost.
//
// Usage:
//
//	apcache-client -addr 127.0.0.1:7070 -keys 50 -tq 1s -davg 100 -queries 100
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"math/rand"
	"time"

	"apcache/internal/aperrs"
	"apcache/internal/client"
	"apcache/internal/workload"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7070", "server address")
		keys     = flag.Int("keys", 50, "number of keys hosted by the server")
		perQuery = flag.Int("perquery", 10, "keys touched per query")
		cacheSz  = flag.Int("cache", 0, "cache capacity (0 = all keys)")
		tq       = flag.Duration("tq", time.Second, "query period")
		davg     = flag.Float64("davg", 100, "average precision constraint")
		sigma    = flag.Float64("sigma", 1, "precision constraint variation in [0,1]")
		queries  = flag.Int("queries", 100, "number of queries to run (0 = forever)")
		useMax   = flag.Bool("max", false, "run MAX queries instead of SUM")
		cvr      = flag.Float64("cvr", 1, "value-initiated refresh cost (for reporting)")
		cqr      = flag.Float64("cqr", 2, "query-initiated refresh cost (for reporting)")
		seed     = flag.Int64("seed", 1, "random seed")
		maxBatch = flag.Int("maxbatch", 0, "max messages per batch frame (0 = default 128)")
		protoVer = flag.Int("protover", 0, "cap the wire protocol: 1 = v1 single frames, 2 = batched v2, 0/3 = v3 with structured errors")
		timeout  = flag.Duration("timeout", 0, "per-request timeout (0 = default 10s)")
		ramp     = flag.Float64("ramp", 0, "MAX/MIN batched refinement ramp factor (0 = adaptive from measured RTT, 1 = paper-minimal)")
		cqrCost  = flag.Duration("cqrcost", 0, "modeled per-key refresh cost for the adaptive ramp (0 = default 100µs)")
		qlimit   = flag.Duration("qdeadline", 0, "per-query context deadline (0 = client default timeout only)")
		reconn   = flag.Bool("reconnect", false, "survive server restarts: redial with backoff and replay subscriptions")
		stale    = flag.Float64("stale", 0, "serve cached reads during outages, widening intervals at this rate (units/s); 0 = fail instead (requires -reconnect)")
	)
	flag.Parse()

	size := *cacheSz
	if size <= 0 {
		size = *keys
	}
	c, err := client.DialConfig(*addr, client.Config{
		CacheSize:        size,
		MaxBatch:         *maxBatch,
		ProtoVersion:     *protoVer,
		Timeout:          *timeout,
		RampFactor:       *ramp,
		CqrCost:          *cqrCost,
		Reconnect:        client.ReconnectPolicy{Enabled: *reconn},
		StaleReads:       *stale > 0,
		StaleWidthGrowth: *stale,
	})
	if err != nil {
		log.Fatalf("apcache-client: %v", err)
	}
	defer c.Close()
	all := make([]int, *keys)
	for k := range all {
		all[k] = k
	}
	if err := c.SubscribeMulti(all); err != nil {
		log.Fatalf("apcache-client: subscribe: %v", err)
	}
	log.Printf("subscribed to %d keys (protocol v%d); querying every %v", *keys, c.Proto(), *tq)

	kind := workload.Sum
	if *useMax {
		kind = workload.Max
	}
	gen := &workload.QueryGen{
		Kinds:        []workload.AggKind{kind},
		NumSources:   *keys,
		KeysPerQuery: *perQuery,
		Constraints:  workload.ConstraintDist{Avg: *davg, Sigma: *sigma},
		RNG:          rand.New(rand.NewSource(*seed)),
	}
	if err := gen.Validate(); err != nil {
		log.Fatalf("apcache-client: %v", err)
	}

	start := time.Now()
	ticker := time.NewTicker(*tq)
	defer ticker.Stop()
	for n := 0; *queries == 0 || n < *queries; n++ {
		<-ticker.C
		q := gen.Next()
		ctx := context.Background()
		cancel := context.CancelFunc(func() {})
		if *qlimit > 0 {
			ctx, cancel = context.WithTimeout(ctx, *qlimit)
		}
		ans, err := c.QueryCtx(ctx, q)
		cancel()
		if err != nil {
			if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, aperrs.ErrTimeout) {
				log.Printf("apcache-client: query #%d timed out: %v", n+1, err)
				continue
			}
			if *reconn && errors.Is(err, aperrs.ErrConnLost) {
				// The redial loop owns recovery; queries resume once the
				// replayed subscriptions land.
				log.Printf("apcache-client: query #%d lost the connection (reconnecting): %v", n+1, err)
				continue
			}
			log.Fatalf("apcache-client: query: %v", err)
		}
		if (n+1)%10 == 0 {
			st := c.Stats()
			elapsed := time.Since(start).Seconds()
			cost := float64(st.ValueRefreshes)*(*cvr) + float64(st.QueryRefreshes)*(*cqr)
			log.Printf("q#%d %s(%d keys) delta=%.3g -> %v (fetched %d); VIR=%d QIR=%d cost-rate=%.4g/s",
				n+1, q.Kind, len(q.Keys), q.Delta, ans.Result, len(ans.Refreshed),
				st.ValueRefreshes, st.QueryRefreshes, cost/elapsed)
		}
	}
	st := c.Stats()
	cost := float64(st.ValueRefreshes)*(*cvr) + float64(st.QueryRefreshes)*(*cqr)
	log.Printf("done: VIR=%d QIR=%d total-cost=%.4g hit-rate=%.2f frames-sent=%d frames-recv=%d rtt=%v server-cqr-cost=%v reconnects=%d",
		st.ValueRefreshes, st.QueryRefreshes, cost,
		float64(st.Cache.Hits)/float64(st.Cache.Hits+st.Cache.Misses+1),
		st.FramesSent, st.FramesReceived, st.SmoothedRTT, st.ServerCqrCost, st.Reconnects)
}
