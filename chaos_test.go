package apcache

// Chaos suite: kills and restarts servers under live load, with the
// fault-injection proxy (internal/faultnet) standing between client and
// server so outages look like real network failures rather than clean
// shutdowns. Run under `go test -race`. The contract being checked is the
// fault-tolerant session layer's:
//
//   - a client with ReconnectPolicy.Enabled survives a server restart:
//     it redials, re-runs the handshake, and replays every live
//     subscription, so the replacement server ends up with the same
//     subscription set the original had;
//   - calls that fail during the outage fail with the typed ErrConnLost,
//     never a bare string error;
//   - Watch streams emit EventDisconnected / EventReconnected around the
//     outage and then resume delivering refreshes;
//   - nothing leaks: after teardown the goroutine count returns to its
//     pre-test baseline;
//   - Server.Shutdown drains parked pushes before closing connections.

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"apcache/internal/faultnet"
)

// chaosServe starts a server in the given connection mode and seeds keys
// 0..keys-1 with value float64(k)+seedDelta.
func chaosServe(t *testing.T, mode string, keys int, seedDelta float64) (*Server, string) {
	t.Helper()
	srv, addr, err := Serve("127.0.0.1:0", ServerConfig{
		Params:        DefaultParams(1, 2, 0),
		InitialWidth:  8,
		Shards:        4,
		MaxBatch:      64,
		FlushInterval: 500 * time.Microsecond,
		ConnMode:      mode,
	})
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	if got := srv.ConnMode(); got != mode {
		srv.Close()
		t.Fatalf("server runs ConnMode %q, want %q", got, mode)
	}
	for k := 0; k < keys; k++ {
		srv.SetInitial(k, float64(k)+seedDelta)
	}
	return srv, addr.String()
}

// totalSubs sums live (client, key) subscriptions across a server's shards.
func totalSubs(srv *Server) int {
	n := 0
	for _, sh := range srv.Stats().PerShard {
		n += sh.Subscriptions
	}
	return n
}

// settleGoroutines samples the goroutine count after a GC settle, for use
// as a leak baseline.
func settleGoroutines() int {
	runtime.GC()
	time.Sleep(10 * time.Millisecond)
	return runtime.NumGoroutine()
}

// waitGoroutines polls until the goroutine count returns to within a small
// slack of baseline, dumping stacks on timeout.
func waitGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= baseline+3 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			sz := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d live, baseline %d\n%s", n, baseline, buf[:sz])
		}
		runtime.GC()
		time.Sleep(20 * time.Millisecond)
	}
}

// errCollector gathers errors from concurrent load goroutines.
type errCollector struct {
	mu   sync.Mutex
	errs []error
}

func (ec *errCollector) add(err error) {
	ec.mu.Lock()
	ec.errs = append(ec.errs, err)
	ec.mu.Unlock()
}

func (ec *errCollector) snapshot() []error {
	ec.mu.Lock()
	defer ec.mu.Unlock()
	return append([]error(nil), ec.errs...)
}

// TestChaosServerRestartResubscribes is the headline chaos scenario: a
// client holds 1000 live subscriptions and an open Watch through the fault
// proxy; the server is killed and every link severed; a replacement server
// comes up on a fresh port and the proxy is retargeted. The client must
// reconnect, replay all 1000 subscriptions, resume the Watch with a
// Disconnected/Reconnected event pair, and fail every outage-window call
// with the typed ErrConnLost — and nothing may leak.
func TestChaosServerRestartResubscribes(t *testing.T) {
	forEachConnMode(t, chaosServerRestart)
}

func chaosServerRestart(t *testing.T, mode string) {
	const keys = 1000
	baseline := settleGoroutines()

	srv1, addr1 := chaosServe(t, mode, keys, 0)
	proxy, err := faultnet.Listen(addr1)
	if err != nil {
		t.Fatalf("faultnet.Listen: %v", err)
	}
	defer proxy.Close()

	c, err := DialConfig(proxy.Addr(), ClientConfig{
		CacheSize: keys,
		MaxBatch:  64,
		Reconnect: ReconnectPolicy{
			Enabled:   true,
			BaseDelay: time.Millisecond,
			MaxDelay:  20 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatalf("DialConfig: %v", err)
	}
	defer c.Close()

	all := make([]int, keys)
	for k := range all {
		all[k] = k
	}
	if err := c.SubscribeMulti(all); err != nil {
		t.Fatalf("SubscribeMulti: %v", err)
	}
	if got := totalSubs(srv1); got != keys {
		t.Fatalf("server holds %d subscriptions before the outage, want %d", got, keys)
	}

	w, err := c.Watch(0)
	if err != nil {
		t.Fatalf("Watch: %v", err)
	}
	defer w.Close()

	// Background load: continuous exact reads across the key space. Every
	// error observed during the outage must be the typed connection-loss
	// error.
	var ec errCollector
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := c.ReadExact(rng.Intn(keys)); err != nil {
					ec.add(err)
					time.Sleep(100 * time.Microsecond)
				}
			}
		}(int64(g))
	}

	// Kill the server and cut every live link mid-flight.
	srv1.Close()
	proxy.Sever()

	// Wait until the outage is observable from the load goroutines, so the
	// in-flight-call error path is genuinely exercised before recovery.
	for deadline := time.Now().Add(10 * time.Second); ; {
		if len(ec.snapshot()) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no call failed during the outage")
		}
		time.Sleep(time.Millisecond)
	}

	// Replacement server on a fresh port, different values; retarget the
	// proxy so the client's redial loop finds it.
	srv2, addr2 := chaosServe(t, mode, keys, 0.25)
	defer srv2.Close()
	proxy.SetTarget(addr2)

	// Recovery: the client must report a successful reconnect and the
	// replacement server must hold the full replayed subscription set.
	for deadline := time.Now().Add(15 * time.Second); ; {
		st := c.Stats()
		if st.Reconnects >= 1 && totalSubs(srv2) == keys {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("recovery incomplete: reconnects=%d, replayed subscriptions=%d/%d",
				st.Reconnects, totalSubs(srv2), keys)
		}
		time.Sleep(time.Millisecond)
	}

	close(stop)
	wg.Wait()
	for _, err := range ec.snapshot() {
		if !errors.Is(err, ErrConnLost) {
			t.Fatalf("outage-window call failed with %v; want errors.Is(err, ErrConnLost)", err)
		}
	}

	// The Watch must have seen the outage as an event pair and then resumed
	// delivering refreshes from the replacement server. Sets drive key 0 far
	// outside its interval so a push is guaranteed.
	sawDisc, sawReco := false, false
	tick := time.NewTicker(5 * time.Millisecond)
	defer tick.Stop()
	timeout := time.After(15 * time.Second)
	next := 1e6
	for resumed := false; !resumed; {
		select {
		case u, ok := <-w.Updates():
			if !ok {
				t.Fatalf("watch failed across restart: %v", w.Err())
			}
			switch u.Event {
			case EventDisconnected:
				sawDisc = true
			case EventReconnected:
				if !sawDisc {
					t.Fatalf("EventReconnected delivered before EventDisconnected")
				}
				sawReco = true
			default:
				if sawReco && u.Key == 0 {
					resumed = true
				}
			}
		case <-tick.C:
			next += 1e5
			srv2.Set(0, next)
		case <-timeout:
			t.Fatalf("watch never resumed: sawDisconnected=%v sawReconnected=%v", sawDisc, sawReco)
		}
	}

	// Safety spot-check after a Ping drain: replayed intervals must contain
	// the replacement server's exact values.
	if err := c.Ping(); err != nil {
		t.Fatalf("post-recovery Ping: %v", err)
	}
	for k := 1; k < keys; k += 97 {
		iv, cached := c.Get(k)
		if !cached {
			continue // evicted is legal
		}
		v, ok := srv2.Value(k)
		if !ok {
			t.Fatalf("replacement server lost key %d", k)
		}
		if !iv.Valid(v) {
			t.Fatalf("key %d: replayed interval %v does not contain exact value %g", k, iv, v)
		}
	}

	w.Close()
	if err := c.Close(); err != nil && !errors.Is(err, ErrClosed) {
		t.Fatalf("Close: %v", err)
	}
	srv2.Close()
	proxy.Close()
	waitGoroutines(t, baseline)
}

// TestChaosFlapSurvival cycles the proxy up and down every few milliseconds
// while load runs, the reconnect-storm regime. The client must ride out the
// flapping with only typed connection-loss errors and come back fully
// usable once the link stabilizes.
func TestChaosFlapSurvival(t *testing.T) {
	forEachConnMode(t, chaosFlap)
}

func chaosFlap(t *testing.T, mode string) {
	const keys = 64
	baseline := settleGoroutines()

	srv, addr := chaosServe(t, mode, keys, 0)
	defer srv.Close()
	proxy, err := faultnet.Listen(addr)
	if err != nil {
		t.Fatalf("faultnet.Listen: %v", err)
	}
	defer proxy.Close()

	c, err := DialConfig(proxy.Addr(), ClientConfig{
		CacheSize: keys,
		Reconnect: ReconnectPolicy{
			Enabled:   true,
			BaseDelay: time.Millisecond,
			MaxDelay:  10 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatalf("DialConfig: %v", err)
	}
	defer c.Close()
	all := make([]int, keys)
	for k := range all {
		all[k] = k
	}
	if err := c.SubscribeMulti(all); err != nil {
		t.Fatalf("SubscribeMulti: %v", err)
	}

	stopFlap := proxy.Flap(8*time.Millisecond, 8*time.Millisecond)
	var ec errCollector
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := c.ReadExact(rng.Intn(keys)); err != nil {
					ec.add(err)
					time.Sleep(100 * time.Microsecond)
				}
			}
		}(int64(g + 50))
	}
	time.Sleep(300 * time.Millisecond)
	stopFlap()
	close(stop)
	wg.Wait()

	for _, err := range ec.snapshot() {
		if !errors.Is(err, ErrConnLost) {
			t.Fatalf("flap-window call failed with %v; want errors.Is(err, ErrConnLost)", err)
		}
	}

	// Once the link stabilizes a full sweep must eventually succeed.
	deadline := time.Now().Add(10 * time.Second)
	for {
		ok := true
		for k := 0; k < keys; k++ {
			if _, err := c.ReadExact(k); err != nil {
				ok = false
				break
			}
		}
		if ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("client never recovered after flapping stopped")
		}
		time.Sleep(5 * time.Millisecond)
	}

	c.Close()
	srv.Close()
	proxy.Close()
	waitGoroutines(t, baseline)
}

// TestShutdownDrainDeliversFinalValues checks the graceful-drain contract:
// a burst of Sets parks pushes in flush windows and queues, and
// Server.Shutdown must flush them all to the subscribed client before
// closing its connection. The server runs durable, extending the contract
// across the process boundary: the drained journal must recover — on a
// replacement server over the same WAL directory — to exactly the final
// values the client was sent, at the widths it was sent them.
func TestShutdownDrainDeliversFinalValues(t *testing.T) {
	forEachConnMode(t, shutdownDrain)
}

func shutdownDrain(t *testing.T, mode string) {
	const keys = 32
	baseline := settleGoroutines()

	walDir := t.TempDir()
	srv, addr, err := Serve("127.0.0.1:0", ServerConfig{
		Params:        DefaultParams(1, 2, 0),
		InitialWidth:  8,
		Shards:        4,
		FlushInterval: 2 * time.Millisecond, // wide window: pushes park in it
		ConnMode:      mode,
		WALDir:        walDir,
	})
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer srv.Close()
	for k := 0; k < keys; k++ {
		srv.SetInitial(k, float64(k))
	}
	c, err := DialConfig(addr.String(), ClientConfig{CacheSize: keys})
	if err != nil {
		t.Fatalf("DialConfig: %v", err)
	}
	defer c.Close()
	all := make([]int, keys)
	for k := range all {
		all[k] = k
	}
	if err := c.SubscribeMulti(all); err != nil {
		t.Fatalf("SubscribeMulti: %v", err)
	}

	// Every Set lands far outside the key's interval, forcing a push; then
	// Shutdown immediately, while pushes are still parked in the flush
	// window.
	for k := 0; k < keys; k++ {
		srv.Set(k, 1e6+float64(k))
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	// The drained bytes are in flight to the client; its read loop applies
	// them before hitting EOF. Poll until every final value is visible.
	deadline := time.Now().Add(5 * time.Second)
	for k := 0; k < keys; k++ {
		for {
			iv, cached := c.Get(k)
			if cached && iv.Valid(1e6+float64(k)) {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("key %d: interval %v never received the drained final value %g",
					k, iv, 1e6+float64(k))
			}
			time.Sleep(time.Millisecond)
		}
	}

	// The drain's durability half: a replacement server recovered from the
	// same WAL directory must host exactly the final values the client was
	// just sent — and the widths it was sent them at must be the recovered
	// learned seeds, so a resubscribing client resumes at that precision.
	srv2, _, err := Serve("127.0.0.1:0", ServerConfig{
		Params:       DefaultParams(1, 2, 0),
		InitialWidth: 8,
		Shards:       4,
		ConnMode:     mode,
		WALDir:       walDir,
	})
	if err != nil {
		t.Fatalf("recovery Serve: %v", err)
	}
	for k := 0; k < keys; k++ {
		v, ok := srv2.Value(k)
		if !ok {
			t.Fatalf("key %d: not recovered from the drained WAL", k)
		}
		if want := 1e6 + float64(k); v != want {
			t.Fatalf("key %d: recovered value %g, want the drained final value %g", k, v, want)
		}
		iv, cached := c.Get(k)
		if !cached {
			continue // evicted is legal; the value check above still holds
		}
		if w, ok := srv2.LearnedWidth(k); !ok || !almostEq(w, iv.Width()) {
			t.Fatalf("key %d: recovered learned width %g (ok=%v), client holds width %g",
				k, w, ok, iv.Width())
		}
	}
	if err := srv2.Shutdown(nil); err != nil {
		t.Fatalf("recovery server Shutdown: %v", err)
	}

	c.Close()
	waitGoroutines(t, baseline)
}

// almostEq compares widths that traveled through the wire format (float64
// end to end, so exact equality is expected; the epsilon guards rounding in
// interval reconstruction only).
func almostEq(a, b float64) bool {
	d := a - b
	return d < 1e-9 && d > -1e-9
}
