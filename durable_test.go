package apcache

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"apcache/internal/wal"
)

// durableOpts is the deterministic baseline the durability tests share: a
// fixed seed and shard count so a recovered store and a freshly-replayed
// one walk identical controller RNG streams.
func durableOpts(d *DurabilityOptions) Options {
	return Options{Seed: 11, Shards: 4, Durability: d}
}

// driveStore applies a deterministic write-heavy workload and returns the
// per-key exact values it ends on.
func driveStore(t *testing.T, s *Store, keys, ops int) map[int]float64 {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	final := make(map[int]float64)
	for k := 0; k < keys; k++ {
		v := float64(k)
		s.Track(k, v)
		final[k] = v
	}
	for i := 0; i < ops; i++ {
		k := rng.Intn(keys)
		switch rng.Intn(3) {
		case 0, 1:
			v := final[k] + rng.NormFloat64()*4
			s.Set(k, v)
			final[k] = v
		case 2:
			if _, err := s.ReadExact(k); err != nil {
				t.Fatalf("read %d: %v", k, err)
			}
		}
	}
	return final
}

// checkRecovered asserts a reopened store serves exactly the values and
// learned widths the original ended with.
func checkRecovered(t *testing.T, s *Store, final map[int]float64, widths map[int]float64) {
	t.Helper()
	for k, want := range final {
		got, err := s.ReadExact(k)
		if err != nil {
			t.Fatalf("recovered store lost key %d: %v", k, err)
		}
		if got != want {
			t.Fatalf("key %d recovered value %g, want %g", k, got, want)
		}
	}
	for k, want := range widths {
		got, ok := s.Width(k)
		if !ok {
			t.Fatalf("recovered store lost subscription for key %d", k)
		}
		if got != want {
			t.Fatalf("key %d recovered width %g, want %g", k, got, want)
		}
	}
}

// snapshotWidths captures every key's learned width.
func snapshotWidths(t *testing.T, s *Store, keys int) map[int]float64 {
	t.Helper()
	w := make(map[int]float64, keys)
	for k := 0; k < keys; k++ {
		width, ok := s.Width(k)
		if !ok {
			t.Fatalf("key %d has no width", k)
		}
		w[k] = width
	}
	return w
}

func TestOpenDurableRoundtrip(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenDurable(dir, durableOpts(&DurabilityOptions{Fsync: FsyncAlways}))
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	final := driveStore(t, s, 40, 600)
	widths := snapshotWidths(t, s, 40)
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	s2, err := OpenDurable(dir, durableOpts(&DurabilityOptions{Fsync: FsyncAlways}))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	// Width checks must run before ReadExact refreshes mutate them.
	for k, want := range widths {
		if got, ok := s2.Width(k); !ok || got != want {
			t.Fatalf("key %d recovered width %g (ok=%v), want %g", k, got, ok, want)
		}
	}
	checkRecovered(t, s2, final, nil)
}

func TestOpenDurableRecoversWithoutClose(t *testing.T) {
	// Abandon the store without Close — the crash equivalent. FsyncAlways
	// means every completed write is on disk, so the reopened store must
	// serve the exact final state.
	dir := t.TempDir()
	s, err := OpenDurable(dir, durableOpts(&DurabilityOptions{
		Fsync:      FsyncAlways,
		CompactMin: 1 << 30, // keep the abandoned store's compactor quiet
	}))
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	final := driveStore(t, s, 25, 400)
	widths := snapshotWidths(t, s, 25)

	s2, err := OpenDurable(dir, durableOpts(&DurabilityOptions{Fsync: FsyncAlways}))
	if err != nil {
		t.Fatalf("reopen after abandon: %v", err)
	}
	defer s2.Close()
	for k, want := range widths {
		if got, ok := s2.Width(k); !ok || got != want {
			t.Fatalf("key %d recovered width %g (ok=%v), want %g", k, got, ok, want)
		}
	}
	checkRecovered(t, s2, final, nil)
	s.Close()
}

func TestCompactionFoldsLogAndSurvivesCrash(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenDurable(dir, durableOpts(&DurabilityOptions{Fsync: FsyncAlways}))
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	final := driveStore(t, s, 20, 500)
	if err := s.Compact(); err != nil {
		t.Fatalf("compact: %v", err)
	}
	if n := s.wal.log.Records(); n != 0 {
		t.Fatalf("log holds %d records after compaction", n)
	}
	// Writes after the compaction land in the truncated log.
	s.Set(3, 1e6)
	final[3] = 1e6
	widths := snapshotWidths(t, s, 20)

	// Crash (no Close) and recover: snapshot + post-compaction tail.
	s2, err := OpenDurable(dir, durableOpts(&DurabilityOptions{Fsync: FsyncAlways}))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	for k, want := range widths {
		if got, ok := s2.Width(k); !ok || got != want {
			t.Fatalf("key %d recovered width %g (ok=%v), want %g", k, got, ok, want)
		}
	}
	checkRecovered(t, s2, final, nil)
	s.Close()
}

func TestBackgroundCompactionTriggers(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenDurable(dir, durableOpts(&DurabilityOptions{
		Fsync:        FsyncAlways,
		CompactMin:   64,
		CompactRatio: 0.5,
	}))
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer s.Close()
	driveStore(t, s, 10, 2000)
	deadline := time.Now().Add(5 * time.Second)
	for s.wal.log.Records() > 200 {
		if time.Now().After(deadline) {
			t.Fatalf("background compaction never folded the log: %d records", s.wal.log.Records())
		}
		s.Set(1, rand.Float64()*100)
		time.Sleep(time.Millisecond)
	}
	// Compaction advanced the snapshot sequence past the open-time one.
	names, _ := os.ReadDir(dir)
	var snaps int
	for _, e := range names {
		if _, ok := parseSnapName(e.Name()); ok {
			snaps++
		}
	}
	if snaps == 0 || snaps > 2 {
		t.Fatalf("found %d snapshots; compaction should keep 1-2", snaps)
	}
}

// TestSaveFileDuringCompaction hammers explicit SaveFile calls against
// concurrent background compaction (satellite: SaveFile must take the
// compaction lock). Run under -race this doubles as a locking proof.
func TestSaveFileDuringCompaction(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenDurable(dir, durableOpts(&DurabilityOptions{
		Fsync:        FsyncNone, // keep the write loop fast
		CompactMin:   32,
		CompactRatio: 0.1,
	}))
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer s.Close()
	for k := 0; k < 16; k++ {
		s.Track(k, float64(k))
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(5))
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			s.Set(rng.Intn(16), rng.Float64()*1000)
			if i%50 == 0 {
				s.Compact()
			}
		}
	}()
	saved := filepath.Join(t.TempDir(), "explicit.gob")
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := s.SaveFile(saved); err != nil {
				t.Errorf("SaveFile during compaction: %v", err)
				return
			}
		}
	}()
	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()
	if t.Failed() {
		return
	}
	// The explicitly saved snapshot is itself loadable.
	if _, err := LoadFile(saved, 1); err != nil {
		t.Fatalf("explicit snapshot unloadable: %v", err)
	}
}

func TestLoadRejectsNewerVersionTyped(t *testing.T) {
	var buf bytes.Buffer
	if err := encodeSnap(&buf, snapshot{Version: snapshotVersion + 1}); err != nil {
		t.Fatal(err)
	}
	_, err := Load(&buf, 1)
	if !errors.Is(err, ErrSnapshotVersion) {
		t.Fatalf("newer snapshot error = %v, want ErrSnapshotVersion", err)
	}
	var sv *SnapshotVersionError
	if !errors.As(err, &sv) || sv.Got != snapshotVersion+1 || sv.Max != snapshotVersion {
		t.Fatalf("SnapshotVersionError = %+v", sv)
	}
}

func TestOpenDurableRejectsNewerSnapshot(t *testing.T) {
	// A too-new snapshot must fail typed, not silently fall back to an
	// older file — that would discard acked state.
	dir := t.TempDir()
	var buf bytes.Buffer
	if err := encodeSnap(&buf, snapshot{Version: snapshotVersion + 3}); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, snapName(5)), buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := OpenDurable(dir, durableOpts(nil))
	if !errors.Is(err, ErrSnapshotVersion) {
		t.Fatalf("OpenDurable on newer snapshot = %v, want ErrSnapshotVersion", err)
	}
}

func TestV1SnapshotStillLoads(t *testing.T) {
	// A version-1 snapshot (pre-WAL, no LSN field) must load: gob leaves
	// the missing LSN at zero and every record replays over it.
	var buf bytes.Buffer
	snap := snapshot{
		Version: 1,
		Params:  DefaultParams(1, 2, 0),
		Keys: []keySnapshot{
			{Key: 1, Value: 10, Width: 2.5},
			{Key: 2, Value: 20, Width: 0.5, Cached: true, Lo: 19, Hi: 21, OrigW: 2},
		},
	}
	if err := encodeSnap(&buf, snap); err != nil {
		t.Fatal(err)
	}
	s, err := Load(&buf, 1)
	if err != nil {
		t.Fatalf("v1 snapshot rejected: %v", err)
	}
	if w, ok := s.Width(1); !ok || w != 2.5 {
		t.Fatalf("v1 width = %g (ok=%v)", w, ok)
	}
	if iv, ok := s.Get(2); !ok || iv.Lo != 19 || iv.Hi != 21 {
		t.Fatalf("v1 cached interval = %+v (ok=%v)", iv, ok)
	}
}

func TestOpenDurableCorruptNewestFallsBack(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenDurable(dir, durableOpts(&DurabilityOptions{Fsync: FsyncAlways}))
	if err != nil {
		t.Fatal(err)
	}
	final := driveStore(t, s, 8, 100)
	if err := s.Compact(); err != nil { // snapshot N-1: all 8 keys folded in
		t.Fatal(err)
	}
	for k := 0; k < 8; k++ {
		s.Set(k, 1e6+float64(k))
	}
	if err := s.Compact(); err != nil { // snapshot N: the one we destroy
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Corrupt the newest snapshot; recovery must fall back to the kept
	// previous one rather than fail. State rolls back to that snapshot's
	// coverage — its WAL extension was truncated when snapshot N landed —
	// so the post-N-1 writes are lost, but every key N-1 folded in exists.
	names, _ := os.ReadDir(dir)
	var newest string
	var newestSeq uint64
	for _, e := range names {
		if seq, ok := parseSnapName(e.Name()); ok && seq >= newestSeq {
			newest, newestSeq = e.Name(), seq
		}
	}
	if newest == "" {
		t.Fatal("no snapshot written")
	}
	if err := os.WriteFile(filepath.Join(dir, newest), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenDurable(dir, durableOpts(nil))
	if err != nil {
		t.Fatalf("open with corrupt newest snapshot: %v", err)
	}
	defer s2.Close()
	for k := range final {
		if _, ok := s2.Width(k); !ok {
			t.Fatalf("fallback recovery lost key %d entirely", k)
		}
	}
}

func TestDurableStoreTornWALTail(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenDurable(dir, durableOpts(&DurabilityOptions{Fsync: FsyncAlways}))
	if err != nil {
		t.Fatal(err)
	}
	final := driveStore(t, s, 10, 200)
	widths := snapshotWidths(t, s, 10)
	// Tear the tail of every log file: recovery must truncate, not reject.
	names, _ := os.ReadDir(dir)
	for _, e := range names {
		if !wal.IsLogName(e.Name()) {
			continue
		}
		f, err := os.OpenFile(filepath.Join(dir, e.Name()), os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		f.Write([]byte{9, 0, 0, 0, 1, 2, 3}) // truncated frame
		f.Close()
	}
	s2, err := OpenDurable(dir, durableOpts(nil))
	if err != nil {
		t.Fatalf("open with torn tails: %v", err)
	}
	defer s2.Close()
	for k, want := range widths {
		if got, ok := s2.Width(k); !ok || got != want {
			t.Fatalf("key %d recovered width %g (ok=%v), want %g", k, got, ok, want)
		}
	}
	checkRecovered(t, s2, final, nil)
	s.Close()
}

func TestDurableSyncSurfacesFailure(t *testing.T) {
	ffs := wal.NewFaultFS(wal.OSFS)
	dir := t.TempDir()
	s, err := OpenDurable(dir, durableOpts(&DurabilityOptions{Fsync: FsyncAlways, FS: ffs}))
	if err != nil {
		t.Fatal(err)
	}
	s.Track(1, 10)
	if err := s.Sync(); err != nil {
		t.Fatalf("healthy sync: %v", err)
	}
	boom := fmt.Errorf("disk gone")
	ffs.FailSyncs(boom)
	s.Set(1, 1e9) // escapes the interval, must hit the WAL
	if err := s.Close(); err == nil || !strings.Contains(err.Error(), "disk gone") {
		t.Fatalf("Close() after fsync failure = %v, want the sticky error", err)
	}
}
