// Package apcache is an adaptive-precision approximate caching library, a
// from-scratch reproduction of Olston, Loo and Widom, "Adaptive Precision
// Setting for Cached Approximate Values" (ACM SIGMOD 2001).
//
// Numeric source values are cached as intervals [L, H] that are always valid
// (they contain the exact value). The precision of each cached interval —
// its width — is set adaptively: the source widens an interval whose value
// keeps escaping it (value-initiated refreshes) and narrows one that queries
// keep finding too imprecise (query-initiated refreshes), with probabilities
// derived from the refresh cost ratio so the width converges to the
// cost-rate optimum without workload monitoring.
//
// # Sharding and the contention-free read path
//
// The algorithm is inherently per-key — each cached value runs its own
// independent width controller — so Store partitions its keys over a
// power-of-two number of shards (Options.Shards, default scaled to
// GOMAXPROCS). Each shard owns the exact values, controllers, cached
// intervals, and random source for its slice of the key space behind its own
// mutex, so Track/Set/ReadExact on different shards never contend.
//
// Reads go further: they take no lock at all, on any shard. Each cached
// entry is a seqlock — an even/odd version counter beside the interval bits
// — in a lock-free probe table (internal/cache.SeqCache), so Get and the
// bound probes of a bounded-aggregate query (Do) run concurrently with
// writers on the same shard and simply retry the rare torn sequence.
// Writers update entries under the existing shard mutex; only misses and
// the exact-value fetches fall back to it. A query's answer is therefore
// computed from per-interval-consistent reads rather than a whole-query
// snapshot: every interval it uses was individually valid when read, which
// is exactly the guarantee the protocol gives a networked cache anyway.
//
// Cumulative refresh accounting lives in per-shard padded counter stripes
// (internal/stats.Stripes) aggregated by Stats on read, so the hot path
// never shares a counter cache line across shards and Stats takes no locks.
// The cache capacity is likewise skew-aware: each shard reserves only half
// its even split as a guaranteed base and borrows the remainder from a
// shared admission budget on demand, so a hot shard grows at the expense of
// idle ones instead of evicting while cold shards sit on slack.
//
// Three deployment shapes are provided:
//
//   - Store: an in-process source + cache pair for library use.
//   - Server/Client (via Serve and Dial): the same protocol over TCP with a
//     goroutine per connection and the same per-shard locking on the server.
//   - the simulator and experiment harness under internal/, driven by
//     cmd/apcache-sim, which regenerate the paper's performance study.
package apcache

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"

	"apcache/internal/aperrs"
	"apcache/internal/cache"
	"apcache/internal/client"
	"apcache/internal/core"
	"apcache/internal/hierarchy"
	"apcache/internal/interval"
	"apcache/internal/netpoll"
	"apcache/internal/netproto"
	"apcache/internal/query"
	"apcache/internal/server"
	"apcache/internal/shard"
	"apcache/internal/source"
	"apcache/internal/stats"
	"apcache/internal/watch"
	"apcache/internal/workload"
)

// Interval is a closed numeric interval approximation [Lo, Hi].
type Interval = interval.Interval

// Params carries the algorithm parameters: refresh costs Cvr and Cqr, the
// adaptivity parameter Alpha, and the thresholds Lambda0/Lambda1.
type Params = core.Params

// Modes for Params.Mode.
const (
	// ModeInterval is the standard interval-approximation setting.
	ModeInterval = core.ModeInterval
	// ModeStaleCount specializes the algorithm to stale-value (divergence)
	// approximations.
	ModeStaleCount = core.ModeStaleCount
)

// DefaultParams returns the paper's recommended settings: alpha = 1,
// lambda0 = epsilon (smallest meaningful width), lambda1 = +Inf.
func DefaultParams(cvr, cqr, epsilon float64) Params {
	return core.DefaultParams(cvr, cqr, epsilon)
}

// AggKind selects a bounded-aggregate query type.
type AggKind = workload.AggKind

// Aggregate kinds.
const (
	Sum = workload.Sum
	Max = workload.Max
	Min = workload.Min
	Avg = workload.Avg
)

// Query is a bounded-aggregate query over cached values: Kind over Keys with
// a result-interval width of at most Delta.
type Query = workload.Query

// Answer is a query result: a bounding interval no wider than the query's
// Delta, plus the keys that had to be fetched.
type Answer = query.Answer

// Options configures a Store.
type Options struct {
	// Params are the algorithm parameters; zero value gets
	// DefaultParams(1, 2, 0).
	Params Params
	// CacheSize caps the number of cached approximations; 0 means
	// unlimited growth up to the number of keys. Each shard reserves half
	// its even split as a guaranteed base (at least one slot, so the
	// effective total is at most max(CacheSize, Shards)) and the remainder
	// forms a shared admission budget: a full shard borrows budget slots
	// before entering the eviction competition (widest original width
	// loses, per shard), and returns them as entries are dropped. The
	// aggregate never exceeds CacheSize, but under a skewed key
	// distribution hot shards grow past their even share instead of
	// evicting next to idle ones.
	CacheSize int
	// InitialWidth seeds each new controller (default 1).
	InitialWidth float64
	// Seed drives the probabilistic width adjustments (default
	// deterministic seed 1). Each shard derives its own stream from it.
	Seed int64
	// Shards sets the number of lock shards the key space is partitioned
	// over. 0 selects a default scaled to GOMAXPROCS; any value is rounded
	// up to a power of two and capped at 256. Use 1 to recover the old
	// global-lock behavior (useful as a benchmark baseline).
	Shards int
	// LockedReads routes Get through the shard mutex instead of the
	// lock-free seqlock path. It exists, like Shards=1, purely as a
	// benchmark baseline for the pre-seqlock architecture.
	LockedReads bool
	// Durability, when non-nil, makes the store write-ahead durable: every
	// value write, learned-width update, and subscription is appended to a
	// per-shard WAL under Durability.Dir, compacted into snapshots in the
	// background, and recovered by OpenDurable after a crash. Only
	// OpenDurable honors it; NewStore ignores the field (an in-memory
	// store has nothing to recover).
	Durability *DurabilityOptions
}

func (o Options) withDefaults() Options {
	zero := Params{}
	if o.Params == zero {
		o.Params = DefaultParams(1, 2, 0)
	}
	if o.InitialWidth == 0 {
		o.InitialWidth = 1
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	o.Shards = shard.Count(o.Shards)
	return o
}

// storeShard owns one slice of the key space: the exact values and width
// controllers (src), the cached approximations (cache), and the random
// stream feeding the controllers' probabilistic adjustments. src is guarded
// by mu; cache writes require mu but cache reads are lock-free (see
// cache.SeqCache). The struct is padded to a full cache line so individually
// allocated shards never false-share, even when the allocator packs them
// into adjacent slots of one size-class span.
type storeShard struct {
	mu    sync.Mutex
	src   *source.Source
	cache *cache.SeqCache
	idx   int           // this shard's index: its stripe in the store's counters
	_     [64 - 32]byte // pad past one 64-byte cache line
}

// Store is an in-process adaptive-precision cache: a source of exact values
// and a cache of interval approximations wired through the precision-setting
// algorithm. It is safe for concurrent use; see the package comment for the
// sharding design.
type Store struct {
	shards []*storeShard
	prm    Params
	budget *cache.Budget // shared admission slack the shard caches borrow from
	locked bool          // Options.LockedReads

	// Cumulative refresh accounting in per-shard padded stripes: each
	// shard's writers (who hold its mutex) touch only their own cache
	// lines, and Stats aggregates across stripes without taking any lock.
	counters *stats.Stripes

	// Watch registry: watches by observed key. watching mirrors "registry
	// non-empty" as an atomic so the refresh hot paths skip the registry
	// lock entirely while no Watch exists (the common case).
	watchMu  sync.RWMutex
	watchers watch.Registry
	watching atomic.Bool

	// Write-ahead durability (OpenDurable). wal is nil on an in-memory
	// store, which keeps the hot-path guard to one pointer load. compactMu
	// serializes snapshot producers — Save, SaveFile, and WAL compaction —
	// so a log truncation always pairs with the snapshot that covers it.
	wal       *walBackend
	compactMu sync.Mutex
}

// Stripe counter indices in Store.counters.
const (
	cVIR  = iota // value-initiated refreshes
	cQIR         // query-initiated refreshes
	cCost        // cumulative refresh cost, as float64 bits
	storeCounters
)

const storeCacheID = 0

// NewStore builds a store. It returns an error on invalid parameters.
func NewStore(opts Options) (*Store, error) {
	opts = opts.withDefaults()
	if err := opts.Params.Validate(); err != nil {
		return nil, err
	}
	if opts.InitialWidth < 0 || math.IsNaN(opts.InitialWidth) {
		return nil, fmt.Errorf("apcache: bad InitialWidth %g", opts.InitialWidth)
	}
	size := opts.CacheSize
	if size <= 0 {
		size = 1 << 20
	}
	// Skew-aware capacity split: each shard keeps half its even share as a
	// guaranteed base (floored at one slot so no shard is uncacheable) and
	// the rest of the cap forms the shared admission budget the shards
	// borrow from under pressure. The aggregate is exact: bases plus pool
	// equal size whenever size >= 2*Shards, and for CacheSize < Shards the
	// effective total is Shards, as with the old even split.
	base := size / (2 * opts.Shards)
	if base < 1 {
		base = 1
	}
	pool := size - base*opts.Shards
	if pool < 0 {
		pool = 0
	}
	s := &Store{
		shards:   make([]*storeShard, opts.Shards),
		prm:      opts.Params,
		budget:   cache.NewBudget(pool),
		locked:   opts.LockedReads,
		counters: stats.NewStripes(opts.Shards, storeCounters),
	}
	for i := range s.shards {
		// Each shard gets its own deterministic stream: the controllers it
		// hosts draw only from it, under the shard lock.
		rng := rand.New(rand.NewSource(opts.Seed + int64(i)))
		sh := &storeShard{cache: cache.NewSeq(base, s.budget), idx: i}
		sh.src = source.New(func(cacheID, key int) core.WidthPolicy {
			return core.NewController(opts.Params, opts.InitialWidth, rng)
		})
		s.shards[i] = sh
	}
	return s, nil
}

// Shards returns the number of lock shards the store was built with.
func (s *Store) Shards() int { return len(s.shards) }

// shardFor returns the shard owning key.
func (s *Store) shardFor(key int) *storeShard {
	return s.shards[shard.Index(key, len(s.shards))]
}

// chargeLocked accounts one refresh on the shard's counter stripe. The
// caller holds the shard mutex, so the stripe has a single writer and the
// float accumulation needs no CAS loop — the atomics exist only for the
// lock-free Stats reader.
func (s *Store) chargeLocked(sh *storeShard, counter int, cost float64) {
	s.counters.Inc(sh.idx, counter)
	old := math.Float64frombits(uint64(s.counters.Load(sh.idx, cCost)))
	s.counters.Store(sh.idx, cCost, int64(math.Float64bits(old+cost)))
}

// Track registers a key with its initial exact value and caches the first
// approximation. Tracking a key that is already live is treated as an
// update (exactly like Set): routing it through the refresh path keeps the
// cached interval valid, where blindly re-seeding the value would silently
// break the containment invariant.
func (s *Store) Track(key int, v float64) {
	sh := s.shardFor(key)
	sh.mu.Lock()
	token := s.trackLocked(sh, key, v)
	sh.mu.Unlock()
	// The WAL commit waits outside the shard lock: the fsync (policy
	// permitting) never executes inside anyone's critical section, and
	// concurrent writers on the shard share one group commit.
	s.walCommit(sh, token)
}

func (s *Store) trackLocked(sh *storeShard, key int, v float64) uint64 {
	if _, ok := sh.src.Value(key); ok && sh.src.Subscribed(storeCacheID, key) {
		refreshes := sh.src.Set(key, v)
		for _, r := range refreshes {
			s.chargeLocked(sh, cVIR, s.prm.Cvr)
			sh.cache.Put(r.Key, r.Interval, r.OriginalWidth)
			s.notifyWatch(r.Key, r.Interval)
		}
		token := s.stageSetLocked(sh, key, v, refreshes)
		if len(refreshes) == 0 {
			// The new value sits inside the current interval, so no refresh
			// fired — but Track promises the key is cached afterwards, so
			// re-offer the (still valid) current approximation in case the
			// entry was evicted. Subscribe on a live pair is a free read of
			// the current state: no cost, no policy adjustment.
			r := sh.src.Subscribe(storeCacheID, key)
			sh.cache.Put(r.Key, r.Interval, r.OriginalWidth)
		}
		return token
	}
	sh.src.SetInitial(key, v)
	r := sh.src.Subscribe(storeCacheID, key)
	sh.cache.Put(r.Key, r.Interval, r.OriginalWidth)
	s.notifyWatch(r.Key, r.Interval)
	return s.stageTrackLocked(sh, key, v)
}

// Set applies an update to a tracked key. If the new value escapes the
// cached interval a value-initiated refresh fires (cost Cvr) and the
// approximation is re-centered with an adaptively grown width. It reports
// whether a refresh fired.
func (s *Store) Set(key int, v float64) bool {
	sh := s.shardFor(key)
	sh.mu.Lock()
	refreshes := sh.src.Set(key, v)
	for _, r := range refreshes {
		s.chargeLocked(sh, cVIR, s.prm.Cvr)
		sh.cache.Put(r.Key, r.Interval, r.OriginalWidth)
		s.notifyWatch(r.Key, r.Interval)
	}
	refreshed := len(refreshes) > 0
	token := s.stageSetLocked(sh, key, v, refreshes)
	sh.mu.Unlock()
	s.walCommit(sh, token)
	return refreshed
}

// Get returns the cached approximation for key. It takes no lock: the entry
// is read through its seqlock, so a concurrent refresh on the same shard is
// retried rather than waited for, and the returned [Lo, Hi] pair is always
// one self-consistent refresh, never a torn mix of two.
func (s *Store) Get(key int) (Interval, bool) {
	sh := s.shardFor(key)
	if s.locked {
		sh.mu.Lock()
		defer sh.mu.Unlock()
	}
	return sh.cache.Get(key)
}

// ReadExact performs a query-initiated refresh: it returns the exact value
// (cost Cqr) and installs a freshly narrowed interval. An unknown key fails
// with an error matching ErrUnknownKey.
func (s *Store) ReadExact(key int) (float64, error) {
	sh := s.shardFor(key)
	sh.mu.Lock()
	if _, ok := sh.src.Value(key); !ok {
		sh.mu.Unlock()
		return 0, aperrs.UnknownKey(key)
	}
	v, token := s.readLocked(sh, key)
	sh.mu.Unlock()
	s.walCommit(sh, token)
	return v, nil
}

// readLocked serves a query-initiated refresh for a key on an already-locked
// shard. The returned token is the WAL commit handle for the staged width
// record (zero on a non-durable store); the caller passes it to walCommit
// after releasing the shard lock.
func (s *Store) readLocked(sh *storeShard, key int) (float64, uint64) {
	r := sh.src.Read(storeCacheID, key)
	s.chargeLocked(sh, cQIR, s.prm.Cqr)
	sh.cache.Put(r.Key, r.Interval, r.OriginalWidth)
	s.notifyWatch(r.Key, r.Interval)
	var token uint64
	if s.wal != nil {
		// A query-initiated refresh changes only the learned width — the
		// exact value is unchanged, so one OpWidth record captures it.
		token = s.wal.log.Stage(sh.idx, walRecord(opWidth, key, r.OriginalWidth))
	}
	return r.Value, token
}

// Do executes a bounded-aggregate query, fetching exact values as needed to
// guarantee the precision constraint. The bound probes over cached intervals
// take no locks — they read through the entries' seqlocks like Get — so a
// query whose constraint is met from the cache alone never contends with
// writers at all. Only the exact-value fetches (and the existence check for
// keys that miss the cache; a cached key is proof of existence, since keys
// are never deleted from the source) briefly lock the owning shard, one key
// at a time.
//
// The answer is therefore computed from per-interval-consistent reads, not
// one whole-query snapshot: each interval individually contained its exact
// value when read, so the result interval's width guarantee (<= q.Delta)
// holds exactly as before, while concurrent updates are no longer blocked
// for the duration of the query.
func (s *Store) Do(q Query) (Answer, error) {
	return s.DoCtx(context.Background(), q)
}

// DoCtx is Do bounded by ctx: cancellation is honored before every
// query-initiated fetch — including between the refinement rounds of a
// MAX/MIN query, which stops mid-sequence — and an already-done context
// fails before any work. Unknown keys fail with an error matching
// ErrUnknownKey (use errors.As with *KeyError for the key).
func (s *Store) DoCtx(ctx context.Context, q Query) (Answer, error) {
	if err := ctx.Err(); err != nil {
		return Answer{}, err
	}
	for _, k := range q.Keys {
		sh := s.shardFor(k)
		if sh.cache.Contains(k) {
			continue
		}
		sh.mu.Lock()
		_, ok := sh.src.Value(k)
		sh.mu.Unlock()
		if !ok {
			return Answer{}, aperrs.UnknownKey(k)
		}
	}
	return query.ExecuteCtx(ctx, q,
		func(key int) (Interval, bool) { return s.shardFor(key).cache.Get(key) },
		func(key int) float64 {
			sh := s.shardFor(key)
			sh.mu.Lock()
			v, token := s.readLocked(sh, key)
			sh.mu.Unlock()
			s.walCommit(sh, token)
			return v
		})
}

// notifyWatch streams one installed refresh to the watches observing its
// key. Callers hold the key's shard mutex; the atomic guard keeps the
// no-watch hot path to a single load, and Notify never blocks (latest-wins
// coalescing), so a slow Watch consumer cannot stall a writer.
func (s *Store) notifyWatch(key int, iv Interval) {
	if !s.watching.Load() {
		return
	}
	s.watchMu.RLock()
	s.watchers.Notify(key, iv)
	s.watchMu.RUnlock()
}

// Watch opens a streaming subscription over keys: the handle's Updates
// channel delivers every refresh the store installs for them —
// value-initiated refreshes from Set/Track and the narrowed intervals of
// query-initiated reads — as Update values, starting with the current
// approximations. Updates are coalesced per key (latest-wins) when the
// consumer falls behind, so writers are never stalled by a slow consumer.
// Close detaches the stream. Watching an untracked key fails with an error
// matching ErrUnknownKey.
func (s *Store) Watch(keys ...int) (*Watch, error) {
	if len(keys) == 0 {
		return nil, fmt.Errorf("apcache: watch of no keys")
	}
	ks := append([]int(nil), keys...) // detach from the caller's backing array
	for _, k := range ks {
		sh := s.shardFor(k)
		sh.mu.Lock()
		_, ok := sh.src.Value(k)
		sh.mu.Unlock()
		if !ok {
			return nil, aperrs.UnknownKey(k)
		}
	}
	var w *watch.Watch
	w = watch.New(func(*watch.Watch) { s.unwatch(w, ks) })
	s.watchMu.Lock()
	s.watchers.Add(w, ks)
	s.watching.Store(true)
	s.watchMu.Unlock()
	// Seed the stream with the current approximations, taking each key's
	// shard lock so the snapshot interleaves cleanly with concurrent
	// refreshes: for any key, the seed and all later notifications form one
	// ordered sequence (a refresh after the seed is always delivered,
	// possibly coalesced with newer ones).
	for _, k := range ks {
		sh := s.shardFor(k)
		sh.mu.Lock()
		if iv, ok := sh.cache.Get(k); ok {
			w.Notify(k, iv)
		}
		sh.mu.Unlock()
	}
	return w, nil
}

// unwatch removes w from the registry entries of its keys.
func (s *Store) unwatch(w *watch.Watch, keys []int) {
	s.watchMu.Lock()
	defer s.watchMu.Unlock()
	s.watchers.Remove(w, keys)
	if s.watchers.Empty() {
		s.watching.Store(false)
	}
}

// lockAll locks every shard in ascending order (snapshot operations).
func (s *Store) lockAll() {
	for _, sh := range s.shards {
		sh.mu.Lock()
	}
}

// unlockAll releases every shard lock.
func (s *Store) unlockAll() {
	for _, sh := range s.shards {
		sh.mu.Unlock()
	}
}

// ShardOccupancy describes one shard's slice of the cache: how many entries
// it holds against its current capacity. Capacity is elastic — the
// guaranteed base plus however many slots the shard has borrowed from the
// shared admission budget — so under a skewed key distribution hot shards
// report capacities well above their even share while cold ones stay at
// base. The per-shard Evicts/Rejects counters show where capacity pressure
// remains once the budget is exhausted.
type ShardOccupancy struct {
	// Len and Capacity are the shard cache's current entry count and its
	// current (base + borrowed) capacity.
	Len, Capacity int
	// Borrowed is how many of the capacity slots are on loan from the
	// store-wide admission budget.
	Borrowed int
	// Evicts and Rejects count the shard's capacity-pressure events.
	Evicts, Rejects int
}

// StoreStats reports a store's cumulative refresh activity.
type StoreStats struct {
	// ValueRefreshes and QueryRefreshes count refreshes by kind.
	ValueRefreshes, QueryRefreshes int
	// Cost is the total refresh cost (Cvr and Cqr weighted).
	Cost float64
	// Cache snapshots the cache counters, summed over all shards.
	Cache cache.Stats
	// PerShard breaks the cache occupancy down by shard.
	PerShard []ShardOccupancy
}

// Stats snapshots the store's counters without taking any lock: the refresh
// accounting is summed across the per-shard counter stripes and the cache
// counters are read from each shard cache's atomics. The snapshot is
// per-counter-consistent rather than global — concurrent operations may land
// between stripe reads, exactly as with the per-shard locking it replaces.
func (s *Store) Stats() StoreStats {
	st := StoreStats{
		ValueRefreshes: int(s.counters.Sum(cVIR)),
		QueryRefreshes: int(s.counters.Sum(cQIR)),
		PerShard:       make([]ShardOccupancy, len(s.shards)),
	}
	for i, sh := range s.shards {
		st.Cost += math.Float64frombits(uint64(s.counters.Load(i, cCost)))
		cs := sh.cache.Stats()
		st.PerShard[i] = ShardOccupancy{
			Len:      sh.cache.Len(),
			Capacity: sh.cache.Capacity(),
			Borrowed: sh.cache.Borrowed(),
			Evicts:   cs.Evicts,
			Rejects:  cs.Rejects,
		}
		st.Cache.Hits += cs.Hits
		st.Cache.Misses += cs.Misses
		st.Cache.Admits += cs.Admits
		st.Cache.Evicts += cs.Evicts
		st.Cache.Rejects += cs.Rejects
	}
	return st
}

// Server is a networked source process serving cache clients over TCP.
type Server = server.Server

// ServerConfig parameterizes Serve.
type ServerConfig = server.Config

// Connection-core selectors for ServerConfig.ConnMode: the classic
// two-goroutines-per-connection core, or the event-driven poller core that
// multiplexes every connection over a shared epoll loop, decode workers,
// and a writer pool. Unsupported platforms fall back to the goroutine core.
const (
	ConnModeGoroutine = server.ConnModeGoroutine
	ConnModePoller    = server.ConnModePoller
)

// PollerSupported reports whether this platform has an event-driven
// connection core; when false, ConnModePoller downgrades to the goroutine
// core at Listen time.
func PollerSupported() bool { return netpoll.Supported() }

// Serve starts a server on addr ("host:port", port 0 picks a free one) and
// returns it with its bound address. With cfg.WALDir set the server is
// durable: journaled state under that directory is recovered before the
// listener opens, and every hosted value and learned width is journaled from
// then on (see server.Open).
func Serve(addr string, cfg ServerConfig) (*Server, net.Addr, error) {
	srv, err := server.Open(cfg)
	if err != nil {
		return nil, nil, err
	}
	bound, err := srv.Listen(addr)
	if err != nil {
		srv.Close()
		return nil, nil, err
	}
	return srv, bound, nil
}

// Client is a networked approximate cache connected to a Server.
type Client = client.Client

// ClientConfig parameterizes DialConfig: cache capacity plus the batched
// protocol knobs (MaxBatch, ProtoVersion, Timeout) and the fault-tolerance
// knobs (Reconnect, StaleReads, StaleWidthGrowth).
type ClientConfig = client.Config

// ReconnectPolicy configures the client's automatic redial loop
// (ClientConfig.Reconnect): exponential backoff with full jitter, after
// which the session re-runs its handshake and replays every live
// subscription, and open Watch streams resume instead of failing. Disabled
// by default; set Enabled to opt in.
type ReconnectPolicy = client.ReconnectPolicy

// Approx is a locally served approximation with its degradation status:
// Stale marks a read served from last-known state during an outage (see
// ClientConfig.StaleReads), Age how long the connection has been down.
type Approx = client.Approx

// Protocol versions for ServerConfig.ProtoVersion and
// ClientConfig.ProtoVersion. The default (0) negotiates up to v3 — the
// batched protocol with structured error frames — landing on the minimum
// of both peers' versions and falling back to v1 when the peer declines.
const (
	ProtoVersion1 = netproto.Version1
	ProtoVersion2 = netproto.Version2
	ProtoVersion3 = netproto.Version3
)

// Dial connects a cache of the given capacity to a server, negotiating the
// batched v2 protocol when the server supports it.
func Dial(addr string, cacheSize int) (*Client, error) {
	return client.Dial(addr, cacheSize)
}

// DialConfig connects a cache to a server with explicit protocol knobs.
func DialConfig(addr string, cfg ClientConfig) (*Client, error) {
	return client.DialConfig(addr, cfg)
}

// Watch is a streaming subscription handle: Updates delivers the watched
// keys' refreshes as they are applied, with per-key latest-wins coalescing
// when the consumer falls behind. Obtain one from Store.Watch (in-process)
// or Client.Watch (networked); both feeds share the semantics documented on
// those methods.
type Watch = watch.Watch

// Update is one observed refresh (the key and its freshly installed
// interval approximation) or — on a networked watch riding a reconnecting
// client — a connection lifecycle event (Key is -1; see EventKind).
type Update = watch.Update

// EventKind classifies an Update: an ordinary refresh, or a connection
// lifecycle event of the feed the watch rides on.
type EventKind = watch.EventKind

// Watch update kinds. Lifecycle events are delivered only by networked
// watches whose client reconnects automatically (ClientConfig.Reconnect):
// EventDisconnected announces an outage, EventReconnected that the
// connection is back with every subscription replayed.
const (
	EventRefresh      = watch.EventRefresh
	EventDisconnected = watch.EventDisconnected
	EventReconnected  = watch.EventReconnected
)

// Hierarchy is a multi-level cache chain over one source (the paper's
// Section 5 future-work direction): each level runs its own adaptive width
// controller, updates propagate upward only as far as they invalidate, and
// queries descend only as far as their precision constraint requires.
type Hierarchy = hierarchy.Hierarchy

// HierarchyConfig parameterizes NewHierarchy.
type HierarchyConfig = hierarchy.Config

// NewHierarchy builds a multi-level cache chain.
func NewHierarchy(cfg HierarchyConfig) (*Hierarchy, error) {
	return hierarchy.New(cfg)
}
