// Package apcache is an adaptive-precision approximate caching library, a
// from-scratch reproduction of Olston, Loo and Widom, "Adaptive Precision
// Setting for Cached Approximate Values" (ACM SIGMOD 2001).
//
// Numeric source values are cached as intervals [L, H] that are always valid
// (they contain the exact value). The precision of each cached interval —
// its width — is set adaptively: the source widens an interval whose value
// keeps escaping it (value-initiated refreshes) and narrows one that queries
// keep finding too imprecise (query-initiated refreshes), with probabilities
// derived from the refresh cost ratio so the width converges to the
// cost-rate optimum without workload monitoring.
//
// Three deployment shapes are provided:
//
//   - Store: an in-process source + cache pair for library use.
//   - Server/Client (via Serve and Dial): the same protocol over TCP with a
//     goroutine per connection.
//   - the simulator and experiment harness under internal/, driven by
//     cmd/apcache-sim, which regenerate the paper's performance study.
package apcache

import (
	"fmt"
	"math"
	"math/rand"
	"net"
	"sync"

	"apcache/internal/cache"
	"apcache/internal/client"
	"apcache/internal/core"
	"apcache/internal/hierarchy"
	"apcache/internal/interval"
	"apcache/internal/query"
	"apcache/internal/server"
	"apcache/internal/source"
	"apcache/internal/workload"
)

// Interval is a closed numeric interval approximation [Lo, Hi].
type Interval = interval.Interval

// Params carries the algorithm parameters: refresh costs Cvr and Cqr, the
// adaptivity parameter Alpha, and the thresholds Lambda0/Lambda1.
type Params = core.Params

// Modes for Params.Mode.
const (
	// ModeInterval is the standard interval-approximation setting.
	ModeInterval = core.ModeInterval
	// ModeStaleCount specializes the algorithm to stale-value (divergence)
	// approximations.
	ModeStaleCount = core.ModeStaleCount
)

// DefaultParams returns the paper's recommended settings: alpha = 1,
// lambda0 = epsilon (smallest meaningful width), lambda1 = +Inf.
func DefaultParams(cvr, cqr, epsilon float64) Params {
	return core.DefaultParams(cvr, cqr, epsilon)
}

// AggKind selects a bounded-aggregate query type.
type AggKind = workload.AggKind

// Aggregate kinds.
const (
	Sum = workload.Sum
	Max = workload.Max
	Min = workload.Min
	Avg = workload.Avg
)

// Query is a bounded-aggregate query over cached values: Kind over Keys with
// a result-interval width of at most Delta.
type Query = workload.Query

// Answer is a query result: a bounding interval no wider than the query's
// Delta, plus the keys that had to be fetched.
type Answer = query.Answer

// Options configures a Store.
type Options struct {
	// Params are the algorithm parameters; zero value gets
	// DefaultParams(1, 2, 0).
	Params Params
	// CacheSize caps the number of cached approximations; 0 means
	// unlimited growth up to the number of keys.
	CacheSize int
	// InitialWidth seeds each new controller (default 1).
	InitialWidth float64
	// Seed drives the probabilistic width adjustments (default
	// deterministic seed 1).
	Seed int64
}

func (o Options) withDefaults() Options {
	zero := Params{}
	if o.Params == zero {
		o.Params = DefaultParams(1, 2, 0)
	}
	if o.InitialWidth == 0 {
		o.InitialWidth = 1
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Store is an in-process adaptive-precision cache: a source of exact values
// and a cache of interval approximations wired through the precision-setting
// algorithm. It is safe for concurrent use.
type Store struct {
	mu    sync.Mutex
	src   *source.Source
	cache *cache.Cache
	vir   int
	qir   int
	cost  float64
	prm   Params
}

const storeCacheID = 0

// NewStore builds a store. It returns an error on invalid parameters.
func NewStore(opts Options) (*Store, error) {
	opts = opts.withDefaults()
	if err := opts.Params.Validate(); err != nil {
		return nil, err
	}
	if opts.InitialWidth < 0 || math.IsNaN(opts.InitialWidth) {
		return nil, fmt.Errorf("apcache: bad InitialWidth %g", opts.InitialWidth)
	}
	size := opts.CacheSize
	if size <= 0 {
		size = 1 << 20
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	s := &Store{cache: cache.New(size), prm: opts.Params}
	s.src = source.New(func(cacheID, key int) core.WidthPolicy {
		return core.NewController(opts.Params, opts.InitialWidth, rng)
	})
	return s, nil
}

// Track registers a key with its initial exact value and caches the first
// approximation.
func (s *Store) Track(key int, v float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.src.SetInitial(key, v)
	r := s.src.Subscribe(storeCacheID, key)
	s.cache.Put(r.Key, r.Interval, r.OriginalWidth)
}

// Set applies an update to a tracked key. If the new value escapes the
// cached interval a value-initiated refresh fires (cost Cvr) and the
// approximation is re-centered with an adaptively grown width. It reports
// whether a refresh fired.
func (s *Store) Set(key int, v float64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	refreshes := s.src.Set(key, v)
	for _, r := range refreshes {
		s.vir++
		s.cost += s.prm.Cvr
		s.cache.Put(r.Key, r.Interval, r.OriginalWidth)
	}
	return len(refreshes) > 0
}

// Get returns the cached approximation for key.
func (s *Store) Get(key int) (Interval, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cache.Get(key)
}

// ReadExact performs a query-initiated refresh: it returns the exact value
// (cost Cqr) and installs a freshly narrowed interval.
func (s *Store) ReadExact(key int) (float64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.src.Value(key); !ok {
		return 0, fmt.Errorf("apcache: unknown key %d", key)
	}
	return s.readLocked(key), nil
}

func (s *Store) readLocked(key int) float64 {
	r := s.src.Read(storeCacheID, key)
	s.qir++
	s.cost += s.prm.Cqr
	s.cache.Put(r.Key, r.Interval, r.OriginalWidth)
	return r.Value
}

// Do executes a bounded-aggregate query, fetching exact values as needed to
// guarantee the precision constraint.
func (s *Store) Do(q Query) (Answer, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, k := range q.Keys {
		if _, ok := s.src.Value(k); !ok {
			return Answer{}, fmt.Errorf("apcache: unknown key %d", k)
		}
	}
	ans := query.Execute(q,
		func(key int) (Interval, bool) { return s.cache.Get(key) },
		func(key int) float64 { return s.readLocked(key) })
	return ans, nil
}

// StoreStats reports a store's cumulative refresh activity.
type StoreStats struct {
	// ValueRefreshes and QueryRefreshes count refreshes by kind.
	ValueRefreshes, QueryRefreshes int
	// Cost is the total refresh cost (Cvr and Cqr weighted).
	Cost float64
	// Cache snapshots the cache counters.
	Cache cache.Stats
}

// Stats snapshots the store's counters.
func (s *Store) Stats() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return StoreStats{
		ValueRefreshes: s.vir,
		QueryRefreshes: s.qir,
		Cost:           s.cost,
		Cache:          s.cache.Stats(),
	}
}

// Server is a networked source process serving cache clients over TCP.
type Server = server.Server

// ServerConfig parameterizes Serve.
type ServerConfig = server.Config

// Serve starts a server on addr ("host:port", port 0 picks a free one) and
// returns it with its bound address.
func Serve(addr string, cfg ServerConfig) (*Server, net.Addr, error) {
	srv := server.New(cfg)
	bound, err := srv.Listen(addr)
	if err != nil {
		return nil, nil, err
	}
	return srv, bound, nil
}

// Client is a networked approximate cache connected to a Server.
type Client = client.Client

// Dial connects a cache of the given capacity to a server.
func Dial(addr string, cacheSize int) (*Client, error) {
	return client.Dial(addr, cacheSize)
}

// Hierarchy is a multi-level cache chain over one source (the paper's
// Section 5 future-work direction): each level runs its own adaptive width
// controller, updates propagate upward only as far as they invalidate, and
// queries descend only as far as their precision constraint requires.
type Hierarchy = hierarchy.Hierarchy

// HierarchyConfig parameterizes NewHierarchy.
type HierarchyConfig = hierarchy.Config

// NewHierarchy builds a multi-level cache chain.
func NewHierarchy(cfg HierarchyConfig) (*Hierarchy, error) {
	return hierarchy.New(cfg)
}
