// Package apcache is an adaptive-precision approximate caching library, a
// from-scratch reproduction of Olston, Loo and Widom, "Adaptive Precision
// Setting for Cached Approximate Values" (ACM SIGMOD 2001).
//
// Numeric source values are cached as intervals [L, H] that are always valid
// (they contain the exact value). The precision of each cached interval —
// its width — is set adaptively: the source widens an interval whose value
// keeps escaping it (value-initiated refreshes) and narrows one that queries
// keep finding too imprecise (query-initiated refreshes), with probabilities
// derived from the refresh cost ratio so the width converges to the
// cost-rate optimum without workload monitoring.
//
// # Sharding
//
// The algorithm is inherently per-key — each cached value runs its own
// independent width controller — so Store partitions its keys over a
// power-of-two number of shards (Options.Shards, default scaled to
// GOMAXPROCS). Each shard owns the exact values, controllers, cached
// intervals, and random source for its slice of the key space behind its own
// mutex, so Track/Set/Get/ReadExact on different shards never contend.
// Cumulative refresh counters are atomics, read by Stats without touching
// any shard lock. A bounded-aggregate query (Do) locks only the shards its
// keys hash to, always in ascending shard order so concurrent queries with
// overlapping key sets cannot deadlock, and holds them for the duration of
// the query so the answer is computed against one consistent snapshot.
//
// Three deployment shapes are provided:
//
//   - Store: an in-process source + cache pair for library use.
//   - Server/Client (via Serve and Dial): the same protocol over TCP with a
//     goroutine per connection and the same per-shard locking on the server.
//   - the simulator and experiment harness under internal/, driven by
//     cmd/apcache-sim, which regenerate the paper's performance study.
package apcache

import (
	"fmt"
	"math"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"

	"apcache/internal/cache"
	"apcache/internal/client"
	"apcache/internal/core"
	"apcache/internal/hierarchy"
	"apcache/internal/interval"
	"apcache/internal/netproto"
	"apcache/internal/query"
	"apcache/internal/server"
	"apcache/internal/shard"
	"apcache/internal/source"
	"apcache/internal/workload"
)

// Interval is a closed numeric interval approximation [Lo, Hi].
type Interval = interval.Interval

// Params carries the algorithm parameters: refresh costs Cvr and Cqr, the
// adaptivity parameter Alpha, and the thresholds Lambda0/Lambda1.
type Params = core.Params

// Modes for Params.Mode.
const (
	// ModeInterval is the standard interval-approximation setting.
	ModeInterval = core.ModeInterval
	// ModeStaleCount specializes the algorithm to stale-value (divergence)
	// approximations.
	ModeStaleCount = core.ModeStaleCount
)

// DefaultParams returns the paper's recommended settings: alpha = 1,
// lambda0 = epsilon (smallest meaningful width), lambda1 = +Inf.
func DefaultParams(cvr, cqr, epsilon float64) Params {
	return core.DefaultParams(cvr, cqr, epsilon)
}

// AggKind selects a bounded-aggregate query type.
type AggKind = workload.AggKind

// Aggregate kinds.
const (
	Sum = workload.Sum
	Max = workload.Max
	Min = workload.Min
	Avg = workload.Avg
)

// Query is a bounded-aggregate query over cached values: Kind over Keys with
// a result-interval width of at most Delta.
type Query = workload.Query

// Answer is a query result: a bounding interval no wider than the query's
// Delta, plus the keys that had to be fetched.
type Answer = query.Answer

// Options configures a Store.
type Options struct {
	// Params are the algorithm parameters; zero value gets
	// DefaultParams(1, 2, 0).
	Params Params
	// CacheSize caps the number of cached approximations; 0 means
	// unlimited growth up to the number of keys. The cap is divided evenly
	// among the shards (each shard gets at least one slot, so the
	// effective total is at most max(CacheSize, Shards)), and eviction
	// competition (widest original width loses) is per shard rather than
	// global.
	CacheSize int
	// InitialWidth seeds each new controller (default 1).
	InitialWidth float64
	// Seed drives the probabilistic width adjustments (default
	// deterministic seed 1). Each shard derives its own stream from it.
	Seed int64
	// Shards sets the number of lock shards the key space is partitioned
	// over. 0 selects a default scaled to GOMAXPROCS; any value is rounded
	// up to a power of two and capped at 256. Use 1 to recover the old
	// global-lock behavior (useful as a benchmark baseline).
	Shards int
}

func (o Options) withDefaults() Options {
	zero := Params{}
	if o.Params == zero {
		o.Params = DefaultParams(1, 2, 0)
	}
	if o.InitialWidth == 0 {
		o.InitialWidth = 1
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	o.Shards = shard.Count(o.Shards)
	return o
}

// storeShard owns one slice of the key space: the exact values and width
// controllers (src), the cached approximations (cache), and the random
// stream feeding the controllers' probabilistic adjustments. All fields are
// guarded by mu. The struct is padded to a full cache line so individually
// allocated shards never false-share, even when the allocator packs them
// into adjacent slots of one size-class span.
type storeShard struct {
	mu    sync.Mutex
	src   *source.Source
	cache *cache.Cache
	_     [64 - 24]byte // pad past one 64-byte cache line
}

// Store is an in-process adaptive-precision cache: a source of exact values
// and a cache of interval approximations wired through the precision-setting
// algorithm. It is safe for concurrent use; see the package comment for the
// sharding design.
type Store struct {
	shards []*storeShard
	prm    Params

	// Cumulative refresh accounting, updated atomically so Stats reads
	// them without taking any shard lock. These are the one piece of
	// cross-shard shared state on the hot path; they are touched only when
	// a refresh actually fires, not on every operation. cost is stored as
	// float64 bits and updated by CAS.
	vir, qir atomic.Int64
	costBits atomic.Uint64
}

const storeCacheID = 0

// NewStore builds a store. It returns an error on invalid parameters.
func NewStore(opts Options) (*Store, error) {
	opts = opts.withDefaults()
	if err := opts.Params.Validate(); err != nil {
		return nil, err
	}
	if opts.InitialWidth < 0 || math.IsNaN(opts.InitialWidth) {
		return nil, fmt.Errorf("apcache: bad InitialWidth %g", opts.InitialWidth)
	}
	size := opts.CacheSize
	if size <= 0 {
		size = 1 << 20
	}
	s := &Store{shards: make([]*storeShard, opts.Shards), prm: opts.Params}
	for i := range s.shards {
		// Split the cap exactly: size/Shards per shard with the remainder
		// spread over the first shards, floored at one slot each so no
		// shard is uncacheable (for CacheSize < Shards the effective total
		// is therefore Shards, not CacheSize).
		perShard := size / opts.Shards
		if i < size%opts.Shards {
			perShard++
		}
		if perShard < 1 {
			perShard = 1
		}
		// Each shard gets its own deterministic stream: the controllers it
		// hosts draw only from it, under the shard lock.
		rng := rand.New(rand.NewSource(opts.Seed + int64(i)))
		sh := &storeShard{cache: cache.New(perShard)}
		sh.src = source.New(func(cacheID, key int) core.WidthPolicy {
			return core.NewController(opts.Params, opts.InitialWidth, rng)
		})
		s.shards[i] = sh
	}
	return s, nil
}

// Shards returns the number of lock shards the store was built with.
func (s *Store) Shards() int { return len(s.shards) }

// shardFor returns the shard owning key.
func (s *Store) shardFor(key int) *storeShard {
	return s.shards[shard.Index(key, len(s.shards))]
}

// addCost atomically accumulates refresh cost.
func (s *Store) addCost(d float64) {
	for {
		old := s.costBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if s.costBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Track registers a key with its initial exact value and caches the first
// approximation. Tracking a key that is already live is treated as an
// update (exactly like Set): routing it through the refresh path keeps the
// cached interval valid, where blindly re-seeding the value would silently
// break the containment invariant.
func (s *Store) Track(key int, v float64) {
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.src.Value(key); ok && sh.src.Subscribed(storeCacheID, key) {
		refreshes := sh.src.Set(key, v)
		for _, r := range refreshes {
			s.vir.Add(1)
			s.addCost(s.prm.Cvr)
			sh.cache.Put(r.Key, r.Interval, r.OriginalWidth)
		}
		if len(refreshes) == 0 {
			// The new value sits inside the current interval, so no refresh
			// fired — but Track promises the key is cached afterwards, so
			// re-offer the (still valid) current approximation in case the
			// entry was evicted. Subscribe on a live pair is a free read of
			// the current state: no cost, no policy adjustment.
			r := sh.src.Subscribe(storeCacheID, key)
			sh.cache.Put(r.Key, r.Interval, r.OriginalWidth)
		}
		return
	}
	sh.src.SetInitial(key, v)
	r := sh.src.Subscribe(storeCacheID, key)
	sh.cache.Put(r.Key, r.Interval, r.OriginalWidth)
}

// Set applies an update to a tracked key. If the new value escapes the
// cached interval a value-initiated refresh fires (cost Cvr) and the
// approximation is re-centered with an adaptively grown width. It reports
// whether a refresh fired.
func (s *Store) Set(key int, v float64) bool {
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	refreshes := sh.src.Set(key, v)
	for _, r := range refreshes {
		s.vir.Add(1)
		s.addCost(s.prm.Cvr)
		sh.cache.Put(r.Key, r.Interval, r.OriginalWidth)
	}
	return len(refreshes) > 0
}

// Get returns the cached approximation for key.
func (s *Store) Get(key int) (Interval, bool) {
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.cache.Get(key)
}

// ReadExact performs a query-initiated refresh: it returns the exact value
// (cost Cqr) and installs a freshly narrowed interval.
func (s *Store) ReadExact(key int) (float64, error) {
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.src.Value(key); !ok {
		return 0, fmt.Errorf("apcache: unknown key %d", key)
	}
	return s.readLocked(sh, key), nil
}

// readLocked serves a query-initiated refresh for a key on an already-locked
// shard.
func (s *Store) readLocked(sh *storeShard, key int) float64 {
	r := sh.src.Read(storeCacheID, key)
	s.qir.Add(1)
	s.addCost(s.prm.Cqr)
	sh.cache.Put(r.Key, r.Interval, r.OriginalWidth)
	return r.Value
}

// Do executes a bounded-aggregate query, fetching exact values as needed to
// guarantee the precision constraint. Only the shards the query's keys hash
// to are locked, in ascending shard order (so overlapping concurrent queries
// cannot deadlock), and they stay locked for the duration so the answer is
// computed against a consistent snapshot.
func (s *Store) Do(q Query) (Answer, error) {
	locked := s.lockShardsFor(q.Keys)
	defer unlockShards(locked)
	for _, k := range q.Keys {
		if _, ok := s.shardFor(k).src.Value(k); !ok {
			return Answer{}, fmt.Errorf("apcache: unknown key %d", k)
		}
	}
	ans := query.Execute(q,
		func(key int) (Interval, bool) { return s.shardFor(key).cache.Get(key) },
		func(key int) float64 { return s.readLocked(s.shardFor(key), key) })
	return ans, nil
}

// lockShardsFor locks the distinct shards the keys hash to in ascending
// index order and returns them (still locked) for unlockShards.
func (s *Store) lockShardsFor(keys []int) []*storeShard {
	n := len(s.shards)
	seen := make([]bool, n)
	for _, k := range keys {
		seen[shard.Index(k, n)] = true
	}
	locked := make([]*storeShard, 0, n)
	for i, hit := range seen {
		if hit {
			s.shards[i].mu.Lock()
			locked = append(locked, s.shards[i])
		}
	}
	return locked
}

// lockAll locks every shard in ascending order (snapshot operations).
func (s *Store) lockAll() {
	for _, sh := range s.shards {
		sh.mu.Lock()
	}
}

// unlockAll releases every shard lock.
func (s *Store) unlockAll() {
	for _, sh := range s.shards {
		sh.mu.Unlock()
	}
}

func unlockShards(locked []*storeShard) {
	for _, sh := range locked {
		sh.mu.Unlock()
	}
}

// ShardOccupancy describes one shard's slice of the cache: how many entries
// it holds against its share of the capacity split. Because the cap is
// divided evenly while key popularity is not, a skewed distribution shows up
// here as full shards evicting next to shards with slack — the observable
// behind the per-shard eviction question in ROADMAP.md.
type ShardOccupancy struct {
	// Len and Capacity are the shard cache's current and maximum entry
	// counts.
	Len, Capacity int
	// Evicts and Rejects count the shard's capacity-pressure events.
	Evicts, Rejects int
}

// StoreStats reports a store's cumulative refresh activity.
type StoreStats struct {
	// ValueRefreshes and QueryRefreshes count refreshes by kind.
	ValueRefreshes, QueryRefreshes int
	// Cost is the total refresh cost (Cvr and Cqr weighted).
	Cost float64
	// Cache snapshots the cache counters, summed over all shards.
	Cache cache.Stats
	// PerShard breaks the cache occupancy down by shard.
	PerShard []ShardOccupancy
}

// Stats snapshots the store's counters. The refresh counters are read from
// atomics without contending with the hot path; the cache counters take each
// shard lock briefly in turn, so they are per-shard-consistent rather than a
// single global snapshot.
func (s *Store) Stats() StoreStats {
	st := StoreStats{
		ValueRefreshes: int(s.vir.Load()),
		QueryRefreshes: int(s.qir.Load()),
		Cost:           math.Float64frombits(s.costBits.Load()),
		PerShard:       make([]ShardOccupancy, len(s.shards)),
	}
	for i, sh := range s.shards {
		sh.mu.Lock()
		cs := sh.cache.Stats()
		st.PerShard[i] = ShardOccupancy{
			Len:      sh.cache.Len(),
			Capacity: sh.cache.Capacity(),
			Evicts:   cs.Evicts,
			Rejects:  cs.Rejects,
		}
		sh.mu.Unlock()
		st.Cache.Hits += cs.Hits
		st.Cache.Misses += cs.Misses
		st.Cache.Admits += cs.Admits
		st.Cache.Evicts += cs.Evicts
		st.Cache.Rejects += cs.Rejects
	}
	return st
}

// Server is a networked source process serving cache clients over TCP.
type Server = server.Server

// ServerConfig parameterizes Serve.
type ServerConfig = server.Config

// Serve starts a server on addr ("host:port", port 0 picks a free one) and
// returns it with its bound address.
func Serve(addr string, cfg ServerConfig) (*Server, net.Addr, error) {
	srv := server.New(cfg)
	bound, err := srv.Listen(addr)
	if err != nil {
		return nil, nil, err
	}
	return srv, bound, nil
}

// Client is a networked approximate cache connected to a Server.
type Client = client.Client

// ClientConfig parameterizes DialConfig: cache capacity plus the batched
// protocol knobs (MaxBatch, ProtoVersion, Timeout).
type ClientConfig = client.Config

// Protocol versions for ServerConfig.ProtoVersion and
// ClientConfig.ProtoVersion. The default (0) negotiates the batched v2
// protocol and falls back to v1 when the peer declines.
const (
	ProtoVersion1 = netproto.Version1
	ProtoVersion2 = netproto.Version2
)

// Dial connects a cache of the given capacity to a server, negotiating the
// batched v2 protocol when the server supports it.
func Dial(addr string, cacheSize int) (*Client, error) {
	return client.Dial(addr, cacheSize)
}

// DialConfig connects a cache to a server with explicit protocol knobs.
func DialConfig(addr string, cfg ClientConfig) (*Client, error) {
	return client.DialConfig(addr, cfg)
}

// Hierarchy is a multi-level cache chain over one source (the paper's
// Section 5 future-work direction): each level runs its own adaptive width
// controller, updates propagate upward only as far as they invalidate, and
// queries descend only as far as their precision constraint requires.
type Hierarchy = hierarchy.Hierarchy

// HierarchyConfig parameterizes NewHierarchy.
type HierarchyConfig = hierarchy.Config

// NewHierarchy builds a multi-level cache chain.
func NewHierarchy(cfg HierarchyConfig) (*Hierarchy, error) {
	return hierarchy.New(cfg)
}
