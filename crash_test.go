package apcache

// Crash-fault harness for the durable store. Two layers:
//
//   - TestCrashKill9RecoversAckedState re-execs the test binary as a child
//     process that drives a durable store (fsync=always) over a
//     deterministic workload, acking each operation on stdout after it
//     returns; the parent SIGKILLs it at a randomized point, recovers the
//     directory, and — by replaying the identical workload in-process —
//     verifies that every key recovered to a state the simulation passed
//     through at or after that key's last acknowledged operation. An ack
//     under fsync=always means "durable", so recovery may never roll a key
//     back past it; the torn tail past the kill point must truncate, never
//     reject.
//
//   - The FaultFS sweeps cut simulated power at every byte offset of the
//     compaction protocol (snapshot temp write, fsync, rename, log reset)
//     and require recovery to reproduce the pre-compaction state exactly —
//     compaction acknowledges nothing new, so it may lose nothing.

import (
	"bufio"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"testing"
	"time"

	"apcache/internal/wal"
)

const (
	crashKeys = 16
	crashOps  = 1500
)

func crashOptions() Options {
	return Options{
		Seed:         11,
		Shards:       4,
		InitialWidth: 4,
		Durability:   &DurabilityOptions{Fsync: FsyncAlways},
	}
}

// crashOp is one deterministic workload step, identical in parent and child.
type crashOp struct {
	kind int // 0 = track, 1 = set (track if new), 2 = exact read
	key  int
	val  float64
}

func crashWorkload() []crashOp {
	rng := rand.New(rand.NewSource(97))
	ops := make([]crashOp, crashOps)
	for i := range ops {
		ops[i] = crashOp{
			kind: rng.Intn(3),
			key:  rng.Intn(crashKeys),
			val:  float64(rng.Intn(2001) - 1000),
		}
	}
	return ops
}

// applyCrashOp executes one op against a store; returns false if the op was
// a no-op (read of an untracked key), which still consumes its ack slot so
// parent and child number ops identically.
func applyCrashOp(s *Store, tracked map[int]bool, op crashOp) {
	switch op.kind {
	case 0:
		s.Track(op.key, op.val)
		tracked[op.key] = true
	case 1:
		if tracked[op.key] {
			s.Set(op.key, op.val)
		} else {
			s.Track(op.key, op.val)
			tracked[op.key] = true
		}
	case 2:
		if tracked[op.key] {
			s.ReadExact(op.key)
		}
	}
}

// TestCrashChildHelper is the kill -9 victim: re-exec'd by
// TestCrashKill9RecoversAckedState with the WAL directory in the
// environment, it opens the durable store, acks each completed operation on
// stdout, and waits to be killed. A normal test run skips it.
func TestCrashChildHelper(t *testing.T) {
	dir := os.Getenv("APCACHE_CRASH_DIR")
	if dir == "" {
		t.Skip("crash child: only meaningful re-exec'd by TestCrashKill9RecoversAckedState")
	}
	s, err := OpenDurable(dir, crashOptions())
	if err != nil {
		t.Fatalf("crash child: OpenDurable: %v", err)
	}
	fmt.Println("READY")
	tracked := map[int]bool{}
	for i, op := range crashWorkload() {
		applyCrashOp(s, tracked, op)
		// Direct write, not t.Log: the parent must see the ack the instant
		// the (fsynced) operation returns, not at test teardown.
		fmt.Printf("ack %d\n", i)
	}
	fmt.Println("DONE")
	// Park until killed so the parent controls the crash instant; if it
	// never kills us (late target), exiting uncleanly-but-flushed is fine.
	time.Sleep(30 * time.Second)
}

// crashSimState is one key's simulated (value, width) after some op index.
type crashSimState struct {
	op    int
	value float64
	width float64
}

func TestCrashKill9RecoversAckedState(t *testing.T) {
	if testing.Short() {
		t.Skip("re-exec crash harness in -short mode")
	}
	// Two independent kill points per run; each is randomized so repeated CI
	// runs sweep the whole workload.
	for round := 0; round < 2; round++ {
		target := 50 + rand.Intn(crashOps-100)
		t.Run(fmt.Sprintf("round=%d", round), func(t *testing.T) {
			crashKill9Once(t, target)
		})
	}
}

func crashKill9Once(t *testing.T, target int) {
	dir := t.TempDir()
	t.Logf("killing child after ack %d", target)

	cmd := exec.Command(os.Args[0], "-test.run=^TestCrashChildHelper$", "-test.v")
	cmd.Env = append(os.Environ(), "APCACHE_CRASH_DIR="+dir)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("start crash child: %v", err)
	}
	defer func() {
		cmd.Process.Kill()
		cmd.Wait()
	}()

	// Read acks until the kill target, then SIGKILL mid-flight. Keep
	// draining afterwards: acks already in the pipe raise the durability
	// floor the recovery check enforces.
	lastAck := -1
	sc := bufio.NewScanner(stdout)
	killed := false
	for sc.Scan() {
		line := sc.Text()
		if n, ok := strings.CutPrefix(line, "ack "); ok {
			i, err := strconv.Atoi(n)
			if err != nil {
				t.Fatalf("crash child: bad ack %q", line)
			}
			lastAck = i
			if i >= target && !killed {
				cmd.Process.Kill() // SIGKILL: no deferred flushes, no atexit
				killed = true
			}
		}
	}
	cmd.Wait()
	if lastAck < 0 {
		t.Fatalf("crash child produced no acks (scanner err: %v)", sc.Err())
	}
	t.Logf("child killed; last ack read %d", lastAck)

	// In-process simulation of the identical workload: same seed, same
	// shard count, single-threaded, so controller adjustments replay
	// bit-for-bit. Record each key's (value, width) after every op that
	// touches it.
	opts := crashOptions()
	sim, err := NewStore(Options{Seed: opts.Seed, Shards: opts.Shards, InitialWidth: opts.InitialWidth})
	if err != nil {
		t.Fatal(err)
	}
	ops := crashWorkload()
	hist := make(map[int][]crashSimState, crashKeys)
	lastTouch := make(map[int]int, crashKeys)
	tracked := map[int]bool{}
	vals := map[int]float64{}
	for i, op := range ops {
		wasTracked := tracked[op.key]
		applyCrashOp(sim, tracked, op)
		if !wasTracked && !tracked[op.key] {
			continue // read of an untracked key: no state, no touch
		}
		if op.kind != 2 {
			vals[op.key] = op.val
		}
		// Width reads the live controller without mutating it; widths only
		// move on refreshes, so this is exactly the key's last journaled
		// width — what recovery reinstalls.
		w, ok := sim.Width(op.key)
		if !ok {
			t.Fatalf("sim op %d: key %d untracked after touch", i, op.key)
		}
		hist[op.key] = append(hist[op.key], crashSimState{op: i, value: vals[op.key], width: w})
		if i <= lastAck {
			lastTouch[op.key] = len(hist[op.key]) - 1
		}
	}

	rec, err := OpenDurable(dir, crashOptions())
	if err != nil {
		t.Fatalf("recovery after kill -9 must truncate the torn tail, got: %v", err)
	}
	defer rec.Close()

	for k := 0; k < crashKeys; k++ {
		states := hist[k]
		w, isTracked := rec.Width(k)
		floor, acked := lastTouch[k]
		if len(states) == 0 {
			if isTracked {
				t.Fatalf("key %d: recovered but never written", k)
			}
			continue
		}
		if !acked {
			// Only unacked ops touched this key: it may have recovered to
			// any prefix state, including absent.
			if !isTracked {
				continue
			}
			floor = 0
		} else if !isTracked {
			t.Fatalf("key %d: acked at op %d but lost by recovery", k, states[floor].op)
		}
		v, err := rec.ReadExact(k)
		if err != nil {
			t.Fatalf("key %d: recovered store lost the value: %v", k, err)
		}
		// The recovered value and width must each be one the simulation
		// produced at or after the key's last acked touch. (They are checked
		// independently: a record batch torn mid-write may persist the value
		// of a Set whose width record fell past the truncation point.)
		okV, okW := false, false
		for _, st := range states[floor:] {
			if st.value == v {
				okV = true
			}
			if st.width == w {
				okW = true
			}
		}
		if !okV {
			t.Fatalf("key %d: recovered value %g matches no simulated state at op >= %d (acked floor)",
				k, v, states[floor].op)
		}
		if !okW {
			t.Fatalf("key %d: recovered width %g matches no simulated state at op >= %d (acked floor)",
				k, w, states[floor].op)
		}
	}
}

// sweepWorkload drives the deterministic workload the power-cut sweep uses,
// returning the final exact value per key. Identical in every iteration, so
// the on-disk journal at compaction time is byte-for-byte reproducible.
func sweepWorkload(s *Store) map[int]float64 {
	final := map[int]float64{}
	for i := 0; i < 120; i++ {
		k := i % 8
		v := float64(i * 3)
		s.Track(k, v)
		final[k] = v
		if i%5 == 0 {
			s.ReadExact(k)
		}
	}
	return final
}

// TestCompactionPowerCutSweep cuts simulated power at successive byte
// offsets of the compaction protocol — during the snapshot temp-file write,
// its fsync, the rename, the log truncation, and the marker append — and
// requires recovery to land on a legitimate state every time: every acked
// value exactly, and per key either the last journaled width (the cut fell
// before the snapshot rename, so the WAL replays) or the live width the
// snapshot captured (the cut fell after the rename commit point).
// Compaction acknowledges nothing, so it may lose nothing.
func TestCompactionPowerCutSweep(t *testing.T) {
	base := t.TempDir()
	opts := func(ffs wal.FS) Options {
		return Options{
			Seed: 5, Shards: 2, InitialWidth: 2,
			Durability: &DurabilityOptions{Fsync: FsyncAlways, FS: ffs, CompactMin: 1 << 30},
		}
	}

	// Baseline: what WAL-replay recovery yields when compaction never ran.
	// Close does not snapshot, so the reopen recovers purely from the log —
	// the journaled widths, not the live ones.
	baseDir := base + "/baseline"
	s, err := OpenDurable(baseDir, opts(nil))
	if err != nil {
		t.Fatal(err)
	}
	final := sweepWorkload(s)
	liveW := map[int]float64{}
	for k := range final {
		liveW[k], _ = s.Width(k)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("baseline Close: %v", err)
	}
	rec, err := OpenDurable(baseDir, opts(nil))
	if err != nil {
		t.Fatalf("baseline recovery: %v", err)
	}
	walW := map[int]float64{}
	for k := range final {
		var ok bool
		if walW[k], ok = rec.Width(k); !ok {
			t.Fatalf("baseline recovery lost key %d", k)
		}
	}
	rec.Close()

	for budget, iter := int64(0), 0; ; budget, iter = budget+97, iter+1 {
		if iter > 500 {
			t.Fatalf("compaction never completed within the sweep (budget %d)", budget)
		}
		dir := fmt.Sprintf("%s/cut-%06d", base, budget)
		ffs := wal.NewFaultFS(nil)
		s, err := OpenDurable(dir, opts(ffs))
		if err != nil {
			t.Fatalf("budget %d: OpenDurable: %v", budget, err)
		}
		sweepWorkload(s)

		ffs.CutPowerAfter(budget)
		cerr := s.Compact()
		// Whatever the disk did, the in-memory state must be untouched —
		// durability degrades, correctness does not.
		for k := range final {
			if w, ok := s.Width(k); !ok || w != liveW[k] {
				t.Fatalf("budget %d: live width of key %d disturbed by power cut: %g (ok=%v), want %g",
					budget, k, w, ok, liveW[k])
			}
		}
		s.Close() // error expected once the budget is hit; recovery is the test

		rec, err := OpenDurable(dir, Options{Seed: 5, Shards: 2, InitialWidth: 2})
		if err != nil {
			t.Fatalf("budget %d: recovery failed: %v", budget, err)
		}
		for k, v := range final {
			w, ok := rec.Width(k)
			if !ok {
				t.Fatalf("budget %d: key %d lost by crashed compaction", budget, k)
			}
			if w != walW[k] && w != liveW[k] {
				t.Fatalf("budget %d: key %d recovered width %g; want journaled %g or snapshotted %g",
					budget, k, w, walW[k], liveW[k])
			}
			if got, err := rec.ReadExact(k); err != nil || got != v {
				t.Fatalf("budget %d: key %d recovered as %g, %v; want %g", budget, k, got, err, v)
			}
		}
		rec.Close()
		if cerr == nil {
			// The full compaction protocol fit under the budget: every
			// earlier offset has been swept.
			return
		}
	}
}

// TestCompactionRenameFailureRecovers breaks the snapshot rename — the
// atomic commit point of compaction — and checks the failure is clean: the
// live store is unaffected, a later compaction (disk healed) succeeds, and
// recovery serves the exact state throughout.
func TestCompactionRenameFailureRecovers(t *testing.T) {
	dir := t.TempDir()
	ffs := wal.NewFaultFS(nil)
	opts := Options{
		Seed: 7, Shards: 2, InitialWidth: 2,
		Durability: &DurabilityOptions{Fsync: FsyncAlways, FS: ffs, CompactMin: 1 << 30},
	}
	s, err := OpenDurable(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	final := map[int]float64{}
	for i := 0; i < 60; i++ {
		k := i % 6
		s.Track(k, float64(i))
		final[k] = float64(i)
	}

	renameErr := fmt.Errorf("rename blocked")
	ffs.FailRenames(renameErr)
	if err := s.Compact(); err == nil {
		t.Fatal("compaction succeeded despite failing renames")
	}
	for k, v := range final {
		if got, err := s.ReadExact(k); err != nil || got != v {
			t.Fatalf("live store wrong after failed compaction: key %d = %g, %v", k, got, err)
		}
	}
	ffs.FailRenames(nil)
	if err := s.Compact(); err != nil {
		t.Fatalf("compaction after heal: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	rec, err := OpenDurable(dir, Options{Seed: 7, Shards: 2, InitialWidth: 2})
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer rec.Close()
	for k, v := range final {
		if got, err := rec.ReadExact(k); err != nil || got != v {
			t.Fatalf("key %d recovered as %g, %v; want %g", k, got, err, v)
		}
	}
}
