// Tests of the API v1 surface at the Store level: context-bounded queries
// and the in-process Watch stream.
package apcache

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestStoreDoCtxCancellation(t *testing.T) {
	s := newStore(t)
	for k := 0; k < 8; k++ {
		s.Track(k, float64(k))
	}
	// An already-done context fails before any refresh is charged.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	before := s.Stats().QueryRefreshes
	if _, err := s.DoCtx(ctx, Query{Kind: Sum, Keys: []int{0, 1}, Delta: 0}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := s.Stats().QueryRefreshes; got != before {
		t.Errorf("cancelled DoCtx charged %d refreshes", got-before)
	}
	// An expired deadline reports context.DeadlineExceeded.
	dctx, dcancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer dcancel()
	if _, err := s.DoCtx(dctx, Query{Kind: Max, Keys: []int{0, 1}, Delta: 0}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	// A live context behaves exactly like Do.
	ans, err := s.DoCtx(context.Background(), Query{Kind: Sum, Keys: []int{1, 2}, Delta: 0})
	if err != nil {
		t.Fatal(err)
	}
	if !ans.Result.IsExact() || ans.Result.Lo != 3 {
		t.Errorf("result %v, want [3, 3]", ans.Result)
	}
}

func TestStoreWatchStreamsRefreshes(t *testing.T) {
	s := newStore(t) // width 10 intervals
	s.Track(1, 100)
	s.Track(2, 200)
	w, err := s.Watch(1, 2)
	if err != nil {
		t.Fatalf("Watch: %v", err)
	}
	defer w.Close()
	// The stream opens with the current approximations.
	seen := map[int]bool{}
	deadline := time.After(5 * time.Second)
	for len(seen) < 2 {
		select {
		case u := <-w.Updates():
			want := map[int]float64{1: 100, 2: 200}[u.Key]
			if !u.Interval.Valid(want) {
				t.Errorf("key %d seed %v invalid for %g", u.Key, u.Interval, want)
			}
			seen[u.Key] = true
		case <-deadline:
			t.Fatalf("seed updates never arrived")
		}
	}
	// A value-initiated refresh (escape) is streamed.
	if !s.Set(1, 1e6) {
		t.Fatalf("escape did not refresh")
	}
	for {
		select {
		case u := <-w.Updates():
			if u.Key == 1 && u.Interval.Valid(1e6) {
				return
			}
		case <-deadline:
			t.Fatalf("escape refresh never streamed")
		}
	}
}

func TestStoreWatchUnknownKey(t *testing.T) {
	s := newStore(t)
	s.Track(0, 1)
	if _, err := s.Watch(0, 9); !errors.Is(err, ErrUnknownKey) {
		t.Fatalf("Watch err = %v, want ErrUnknownKey match", err)
	}
}

func TestStoreWatchHammer(t *testing.T) {
	// Writers hammer watched keys while a deliberately slow consumer reads:
	// the writers must never block (latest-wins coalescing), every observed
	// interval must have been valid for some written value, and each key's
	// final state must eventually be observed.
	s, err := NewStore(Options{InitialWidth: 10, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	const keys = 8
	for k := 0; k < keys; k++ {
		s.Track(k, 0)
	}
	w, err := s.Watch(0, 1, 2, 3, 4, 5, 6, 7)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	const rounds = 500
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 1; i <= rounds; i++ {
				for k := g; k < keys; k += 4 {
					s.Set(k, float64(i*1000*(k+1)))
				}
			}
		}(g)
	}
	wg.Wait()
	// All writers done: each key's newest interval must reach the consumer.
	finals := make(map[int]float64, keys)
	for k := 0; k < keys; k++ {
		finals[k] = float64(rounds * 1000 * (k + 1))
	}
	seenFinal := map[int]bool{}
	deadline := time.After(10 * time.Second)
	for len(seenFinal) < keys {
		select {
		case u, ok := <-w.Updates():
			if !ok {
				t.Fatalf("stream ended early: %v", w.Err())
			}
			time.Sleep(50 * time.Microsecond) // slow consumer
			if u.Interval.Valid(finals[u.Key]) {
				seenFinal[u.Key] = true
			}
		case <-deadline:
			t.Fatalf("final states never observed (%d/%d)", len(seenFinal), keys)
		}
	}
	if w.Coalesced() == 0 {
		t.Logf("note: no coalescing occurred this run (timing-dependent)")
	}
}

func TestStoreWatchCloseDetaches(t *testing.T) {
	s := newStore(t)
	s.Track(0, 1)
	w, err := s.Watch(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	for range w.Updates() {
	}
	if err := w.Err(); err != nil {
		t.Errorf("Err after clean Close: %v", err)
	}
	// Writes after detach take the no-watch fast path again.
	s.Set(0, 1e9)
	s.Set(0, -1e9)
}
