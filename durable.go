package apcache

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"apcache/internal/aperrs"
	"apcache/internal/source"
	"apcache/internal/wal"
)

// FsyncPolicy selects when WAL appends reach stable storage; see the
// wal.Policy constants re-exported below.
type FsyncPolicy = wal.Policy

// Fsync policies for DurabilityOptions.Fsync.
const (
	// FsyncInterval (the default) group-commits every flush interval: the
	// write path stays syscall-free and a crash loses at most the last
	// interval of appends.
	FsyncInterval = wal.FsyncInterval
	// FsyncAlways makes every write wait for an fsync covering it;
	// concurrent writers on a shard share one group commit.
	FsyncAlways = wal.FsyncAlways
	// FsyncNone hands the appends to the OS on the flush interval and
	// never fsyncs until Close; durability is whatever the kernel gives.
	FsyncNone = wal.FsyncNone
)

// ParseFsyncPolicy maps "always" / "interval" / "none" to a policy.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) { return wal.ParsePolicy(s) }

// WALFS is the filesystem seam the durable backend runs every disk
// operation through — appends, snapshot writes, renames, truncations, and
// recovery reads. Production uses the real filesystem; crash-fault tests
// substitute an injector.
type WALFS = wal.FS

// DurabilityOptions parameterizes a write-ahead durable store
// (Options.Durability + OpenDurable).
type DurabilityOptions struct {
	// Fsync is the append durability policy (default FsyncInterval).
	Fsync FsyncPolicy
	// FsyncInterval is the group-commit window for FsyncInterval/FsyncNone
	// (default 2ms).
	FsyncInterval time.Duration
	// CompactMin is the minimum number of log records before background
	// compaction considers folding the log into a snapshot (default 1024).
	CompactMin int
	// CompactRatio triggers compaction once the log holds more than
	// CompactRatio records per live key (default 4). Both thresholds must
	// pass: a tiny store is not snapshotted every handful of writes, and a
	// huge one is not allowed to grow an unbounded replay tail.
	CompactRatio float64
	// FS overrides the filesystem (fault-injection tests).
	FS WALFS
}

func (d DurabilityOptions) withDefaults() DurabilityOptions {
	if d.FsyncInterval <= 0 {
		d.FsyncInterval = wal.DefaultInterval
	}
	if d.CompactMin <= 0 {
		d.CompactMin = 1024
	}
	if d.CompactRatio <= 0 {
		d.CompactRatio = 4
	}
	if d.FS == nil {
		d.FS = wal.OSFS
	}
	return d
}

// walBackend is the durable state hanging off a Store opened by OpenDurable.
type walBackend struct {
	log  *wal.Log
	fs   wal.FS
	dir  string
	opts DurabilityOptions

	seq  uint64 // sequence of the newest snapshot on disk
	keys int64  // live key estimate for the compaction ratio; updated under shard locks

	kick chan struct{} // nudges the compactor; buffered, lossy
	stop chan struct{}
	done chan struct{}

	closed    atomic.Bool // set before the log closes so late writers skip staging
	closeOnce sync.Once
	closeErr  error
}

// Aliases keep the staging call sites in apcache.go free of a wal import.
const (
	opValue = wal.OpValue
	opWidth = wal.OpWidth
	opSub   = wal.OpSub
)

func walRecord(op wal.Op, key int, val float64) wal.Record {
	return wal.Record{Op: op, Key: int64(key), Val: val}
}

// stageTrackLocked journals a newly tracked key: its exact value and its
// subscription. The caller holds sh.mu (buffer order = state order).
func (s *Store) stageTrackLocked(sh *storeShard, key int, v float64) uint64 {
	if s.wal == nil || s.wal.closed.Load() {
		return 0
	}
	atomic.AddInt64(&s.wal.keys, 1)
	return s.wal.log.Stage(sh.idx, walRecord(opValue, key, v), walRecord(opSub, key, 0))
}

// stageSetLocked journals a value update plus the width adjustments of the
// refreshes it fired. The caller holds sh.mu; refreshes is the scratch slice
// source.Set returned, still valid under the lock.
func (s *Store) stageSetLocked(sh *storeShard, key int, v float64, refreshes []source.Refresh) uint64 {
	if s.wal == nil || s.wal.closed.Load() {
		return 0
	}
	recs := make([]wal.Record, 0, 1+len(refreshes))
	recs = append(recs, walRecord(opValue, key, v))
	for _, r := range refreshes {
		recs = append(recs, walRecord(opWidth, r.Key, r.OriginalWidth))
	}
	return s.wal.log.Stage(sh.idx, recs...)
}

// walCommit waits for the staged records' durability (per the fsync policy)
// and nudges the compactor when the log has outgrown the live state. Called
// after the shard lock is released. Append failures are sticky inside the
// log and surfaced by Sync and Close; the in-memory store stays correct
// regardless, so the write path does not fail the caller.
func (s *Store) walCommit(sh *storeShard, token uint64) {
	if s.wal == nil || token == 0 || s.wal.closed.Load() {
		return
	}
	s.wal.log.Commit(sh.idx, token)
	s.wal.maybeKick()
}

func (b *walBackend) threshold() int64 {
	t := int64(b.opts.CompactMin)
	if r := int64(b.opts.CompactRatio * float64(atomic.LoadInt64(&b.keys))); r > t {
		t = r
	}
	return t
}

func (b *walBackend) maybeKick() {
	if b.log.Records() <= b.threshold() {
		return
	}
	select {
	case b.kick <- struct{}{}:
	default:
	}
}

// Sync forces every buffered WAL append to stable storage regardless of the
// fsync policy, returning the log's sticky failure if durability has broken.
// A no-op nil on a non-durable store.
func (s *Store) Sync() error {
	if s.wal == nil {
		return nil
	}
	return s.wal.log.Sync()
}

// Close stops the background compactor and flushes, fsyncs, and closes the
// WAL. The store itself remains usable in memory afterwards, but writes are
// no longer journaled. A no-op nil on a non-durable store; idempotent. The
// returned error is the log's sticky failure, if durability ever broke —
// the one place an FsyncInterval deployment learns its tail never landed.
func (s *Store) Close() error {
	b := s.wal
	if b == nil {
		return nil
	}
	b.closeOnce.Do(func() {
		b.closed.Store(true)
		close(b.stop)
		<-b.done
		b.closeErr = b.log.Close()
	})
	return b.closeErr
}

// Width returns the learned interval width for a tracked key — the one
// piece of adaptive state the algorithm keeps per key, and exactly what the
// WAL exists to preserve across crashes. ok is false for unknown keys.
func (s *Store) Width(key int) (width float64, ok bool) {
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	p, ok := sh.src.PolicyFor(storeCacheID, key)
	if !ok {
		return 0, false
	}
	return p.Width(), true
}

// snapName formats a snapshot file name; the sequence grows monotonically so
// lexical order is recovery order.
func snapName(seq uint64) string { return fmt.Sprintf("snap-%012d.gob", seq) }

func parseSnapName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "snap-") || !strings.HasSuffix(name, ".gob") {
		return 0, false
	}
	seq, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "snap-"), ".gob"), 10, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// OpenDurable opens (or creates) a write-ahead durable store rooted at dir.
//
// Recovery loads the newest snapshot that decodes and validates, replays
// the WAL records above the snapshot's LSN in log order — so the store
// resumes with every acked value, learned width, and subscription — and
// truncates, rather than rejects, a torn or corrupted log tail: a power cut
// mid-append costs at most the records that were never acknowledged
// durable. The recovered state is then folded into a fresh snapshot and an
// empty log before the store accepts writes ("compaction on open"), which
// makes recovery idempotent and absorbs shard-count changes between runs.
//
// opts.Durability carries the tuning (fsync policy, compaction thresholds,
// filesystem seam); a nil Durability gets defaults. If a snapshot exists its
// algorithm parameters win over opts.Params, exactly as in LoadOptions.
func OpenDurable(dir string, opts Options) (*Store, error) {
	var d DurabilityOptions
	if opts.Durability != nil {
		d = *opts.Durability
	}
	d = d.withDefaults()
	fsys := d.FS
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("apcache: open durable: %w", err)
	}

	snap, seq, err := newestSnapshot(fsys, dir)
	if err != nil {
		return nil, err
	}
	scan, err := wal.ScanDir(fsys, dir)
	if err != nil {
		return nil, fmt.Errorf("apcache: open durable: %w", err)
	}
	if snap == nil {
		snap = &snapshot{Version: snapshotVersion, Params: opts.Params}
	}
	overlayRecords(snap, scan.Records)
	startLSN := scan.MaxLSN
	if snap.LSN > startLSN {
		startLSN = snap.LSN
	}
	snap.LSN = startLSN

	if err := checkSnapshot(snap); err != nil {
		// Individually validated pieces cannot merge into invalid state;
		// this guards the invariant rather than an expected path.
		return nil, fmt.Errorf("apcache: open durable: merged state invalid: %w", err)
	}
	s, err := restoreSnapshot(snap, opts)
	if err != nil {
		return nil, err
	}

	// Compaction on open: fold the recovered state into a fresh snapshot,
	// then start an empty log against it. Every crash window is covered —
	// until the new snapshot's rename lands, the old snapshot + old log
	// recover; after it, the old log's records are all at or below the new
	// snapshot's LSN and are skipped by the replay gate, so deleting the
	// old log files needs no atomicity.
	snap.Version = snapshotVersion
	newSeq := seq + 1
	if err := writeSnapshotFS(fsys, dir, newSeq, snap); err != nil {
		return nil, err
	}
	pruneSnapshots(fsys, dir, newSeq)
	names, _ := fsys.ReadDir(dir)
	for _, name := range names {
		if wal.IsLogName(name) || strings.HasSuffix(name, ".tmp") {
			fsys.Remove(filepath.Join(dir, name))
		}
	}
	log, err := wal.Open(wal.Options{
		Dir:      dir,
		Shards:   s.Shards(),
		Policy:   d.Fsync,
		Interval: d.FsyncInterval,
		FS:       fsys,
		StartLSN: startLSN,
	})
	if err != nil {
		return nil, fmt.Errorf("apcache: open durable: %w", err)
	}
	if err := log.Reset(newSeq); err != nil {
		log.Close()
		return nil, fmt.Errorf("apcache: open durable: %w", err)
	}
	s.wal = &walBackend{
		log:  log,
		fs:   fsys,
		dir:  dir,
		opts: d,
		seq:  newSeq,
		keys: int64(len(snap.Keys)),
		kick: make(chan struct{}, 1),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	go s.compactLoop()
	return s, nil
}

// newestSnapshot returns the newest snapshot under dir that decodes and
// validates, with its sequence. Older snapshots are fallbacks: a corrupt
// newer file is skipped, not fatal (the kept-previous snapshot plus the log
// still recover). seq is the highest sequence seen on disk even among
// invalid files, so the next snapshot never reuses a name. A snapshot from
// a newer format version is a hard typed error — falling back to an older
// file would silently discard acked state.
func newestSnapshot(fsys wal.FS, dir string) (*snapshot, uint64, error) {
	names, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, 0, fmt.Errorf("apcache: open durable: %w", err)
	}
	type cand struct {
		seq  uint64
		name string
	}
	var cands []cand
	var maxSeq uint64
	for _, name := range names {
		if seq, ok := parseSnapName(name); ok {
			cands = append(cands, cand{seq, name})
			if seq > maxSeq {
				maxSeq = seq
			}
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].seq > cands[j].seq })
	for _, c := range cands {
		data, err := fsys.ReadFile(filepath.Join(dir, c.name))
		if err != nil {
			continue
		}
		var snap snapshot
		if err := decodeSnap(bytes.NewReader(data), &snap); err != nil {
			continue
		}
		if err := checkSnapshot(&snap); err != nil {
			if errors.Is(err, aperrs.ErrSnapshotVersion) {
				return nil, 0, err
			}
			continue
		}
		return &snap, maxSeq, nil
	}
	return nil, maxSeq, nil
}

// overlayRecords folds replayed WAL records (already in LSN order) into a
// snapshot's key list, skipping records the snapshot has folded in already.
// Values that escaped their snapshotted interval drop the cached entry —
// the interval would violate containment — but keep the key tracked with
// its learned width, so the next touch re-admits it at learned precision.
func overlayRecords(snap *snapshot, recs []wal.Record) {
	if len(recs) == 0 {
		return
	}
	idx := make(map[int]int, len(snap.Keys))
	for i, ks := range snap.Keys {
		idx[ks.Key] = i
	}
	ent := func(key int) *keySnapshot {
		if i, ok := idx[key]; ok {
			return &snap.Keys[i]
		}
		snap.Keys = append(snap.Keys, keySnapshot{Key: key, Value: math.NaN()})
		idx[key] = len(snap.Keys) - 1
		return &snap.Keys[len(snap.Keys)-1]
	}
	for _, r := range recs {
		if r.LSN <= snap.LSN {
			continue
		}
		key := int(r.Key)
		switch r.Op {
		case wal.OpValue:
			e := ent(key)
			e.Value = r.Val
			if e.Cached && (r.Val < e.Lo || r.Val > e.Hi) {
				e.Cached = false
				e.Lo, e.Hi, e.OrigW = 0, 0, 0
			}
		case wal.OpWidth:
			ent(key).Width = r.Val
		case wal.OpSub:
			ent(key)
		case wal.OpUnsub:
			if i, ok := idx[key]; ok {
				snap.Keys[i].Value = math.NaN() // mark dead; filtered below
			}
		}
	}
	// Keys without a surviving value cannot be restored (and a NaN would
	// poison the source): an OpSub or OpWidth whose OpValue fell into the
	// truncated tail, or an unsubscribed key.
	live := snap.Keys[:0]
	for _, ks := range snap.Keys {
		if !math.IsNaN(ks.Value) {
			live = append(live, ks)
		}
	}
	snap.Keys = live
	sort.Slice(snap.Keys, func(a, b int) bool { return snap.Keys[a].Key < snap.Keys[b].Key })
}

// writeSnapshotFS writes a snapshot crash-safely through the FS seam: temp
// file, full write, fsync, atomic rename, best-effort directory sync.
func writeSnapshotFS(fsys wal.FS, dir string, seq uint64, snap *snapshot) error {
	path := filepath.Join(dir, snapName(seq))
	tmp := path + ".tmp"
	var buf bytes.Buffer
	if err := encodeSnap(&buf, *snap); err != nil {
		return fmt.Errorf("apcache: snapshot %s: %w", path, err)
	}
	f, err := fsys.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("apcache: snapshot %s: %w", path, err)
	}
	data := buf.Bytes()
	for len(data) > 0 {
		n, werr := f.Write(data)
		if werr != nil {
			f.Close()
			fsys.Remove(tmp)
			return fmt.Errorf("apcache: snapshot %s: %w", path, werr)
		}
		data = data[n:]
	}
	if err := f.Sync(); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return fmt.Errorf("apcache: snapshot %s: sync: %w", path, err)
	}
	if err := f.Close(); err != nil {
		fsys.Remove(tmp)
		return fmt.Errorf("apcache: snapshot %s: close: %w", path, err)
	}
	if err := fsys.Rename(tmp, path); err != nil {
		fsys.Remove(tmp)
		return fmt.Errorf("apcache: snapshot %s: %w", path, err)
	}
	wal.SyncDir(dir)
	return nil
}

// pruneSnapshots removes snapshots older than the previous one: the newest
// two are kept so a corrupt latest file (torn by a failing disk, not by a
// crash — the rename protocol rules that out) still leaves a fallback.
func pruneSnapshots(fsys wal.FS, dir string, newest uint64) {
	names, err := fsys.ReadDir(dir)
	if err != nil {
		return
	}
	var seqs []uint64
	for _, name := range names {
		if seq, ok := parseSnapName(name); ok && seq != newest {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] > seqs[j] })
	for _, seq := range seqs[min(1, len(seqs)):] {
		fsys.Remove(filepath.Join(dir, snapName(seq)))
	}
}

// compactLoop runs background compaction: every kick (a commit noticing the
// log outgrew the thresholds) folds the log into a fresh snapshot.
func (s *Store) compactLoop() {
	defer close(s.wal.done)
	for {
		select {
		case <-s.wal.stop:
			return
		case <-s.wal.kick:
			s.Compact()
		}
	}
}

// Compact folds the WAL into a fresh snapshot and truncates it: the
// snapshot is captured and written under every shard lock (stop-the-world,
// like Save), renamed into place, and the log reset against it. A crash at
// any point recovers: before the rename the old snapshot + full log apply;
// after it the log's records are at or below the new snapshot's LSN and the
// replay gate skips them, truncated or not. A no-op error on a non-durable
// store.
func (s *Store) Compact() error {
	if s.wal == nil {
		return fmt.Errorf("apcache: compact: store is not durable")
	}
	s.compactMu.Lock()
	defer s.compactMu.Unlock()
	b := s.wal
	// Stop the world: no Stage is in flight while the snapshot is captured
	// and the log truncated, so the snapshot's LSN covers exactly the
	// records being dropped.
	s.lockAll()
	snap, err := s.captureLocked()
	if err == nil {
		newSeq := b.seq + 1
		if err = writeSnapshotFS(b.fs, b.dir, newSeq, &snap); err == nil {
			if err = b.log.Reset(newSeq); err == nil {
				b.seq = newSeq
				atomic.StoreInt64(&b.keys, int64(len(snap.Keys)))
			}
		}
	}
	s.unlockAll()
	if err != nil {
		return err
	}
	pruneSnapshots(b.fs, b.dir, b.seq)
	return nil
}
