package apcache

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	s := newStore(t)
	for k, v := range []float64{10, 20, 30} {
		s.Track(k, v)
	}
	// Adapt some state: narrow key 2, widen key 0.
	for i := 0; i < 3; i++ {
		if _, err := s.ReadExact(2); err != nil {
			t.Fatal(err)
		}
	}
	v := 10.0
	for i := 0; i < 4; i++ {
		v += 100
		s.Set(0, v)
	}
	before := s.Stats()

	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	restored, err := Load(&buf, 99)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	after := restored.Stats()
	if after.ValueRefreshes != before.ValueRefreshes || after.QueryRefreshes != before.QueryRefreshes {
		t.Errorf("counters lost: %+v vs %+v", after, before)
	}
	if after.Cost != before.Cost {
		t.Errorf("cost lost: %g vs %g", after.Cost, before.Cost)
	}
	// Cached intervals and exact values survive.
	for k, want := range []float64{v, 20, 30} {
		iv0, ok0 := s.Get(k)
		iv1, ok1 := restored.Get(k)
		if ok0 != ok1 || iv0 != iv1 {
			t.Errorf("key %d interval mismatch: %v/%v vs %v/%v", k, iv0, ok0, iv1, ok1)
		}
		got, err := restored.ReadExact(k)
		if err != nil || got != want {
			t.Errorf("key %d value %g, want %g (err %v)", k, got, want, err)
		}
	}
}

func TestLoadPreservesAdaptedWidths(t *testing.T) {
	s := newStore(t)
	s.Track(0, 0)
	// Narrow the width via reads: 10 -> 10/16.
	for i := 0; i < 4; i++ {
		if _, err := s.ReadExact(0); err != nil {
			t.Fatal(err)
		}
	}
	narrowed, _ := s.Get(0)
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := Load(&buf, 1)
	if err != nil {
		t.Fatal(err)
	}
	// The next refresh must continue from the narrowed width, not restart
	// from the default: a value escape doubles it.
	restored.Set(0, 1e6)
	iv, _ := restored.Get(0)
	if iv.Width() > narrowed.Width()*2+1e-9 {
		t.Errorf("restored width %g did not continue from adapted %g", iv.Width(), narrowed.Width())
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("not a snapshot"), 1); err == nil {
		t.Errorf("garbage accepted")
	}
}

func TestLoadRejectsWrongVersion(t *testing.T) {
	s := newStore(t)
	s.Track(0, 1)
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// Re-encode with a bumped version by decoding into the raw struct.
	var snap snapshot
	if err := decodeSnap(&buf, &snap); err != nil {
		t.Fatal(err)
	}
	snap.Version = 99
	var buf2 bytes.Buffer
	if err := encodeSnap(&buf2, snap); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(&buf2, 1); err == nil {
		t.Errorf("wrong version accepted")
	}
}

func TestSaveEmptyStore(t *testing.T) {
	s := newStore(t)
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatalf("Save empty: %v", err)
	}
	restored, err := Load(&buf, 1)
	if err != nil {
		t.Fatalf("Load empty: %v", err)
	}
	if _, ok := restored.Get(0); ok {
		t.Errorf("empty restore has entries")
	}
	if math.IsNaN(restored.Stats().Cost) {
		t.Errorf("NaN cost")
	}
}

func TestLoadOptionsControlsShards(t *testing.T) {
	s, err := NewStore(Options{InitialWidth: 10, Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 20; k++ {
		s.Track(k, float64(k*10))
	}
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	restored, err := LoadOptions(&buf, Options{Seed: 7, Shards: 1})
	if err != nil {
		t.Fatalf("LoadOptions: %v", err)
	}
	if got := restored.Shards(); got != 1 {
		t.Fatalf("restored.Shards() = %d, want 1", got)
	}
	// Keys re-hash onto the new layout with state intact.
	for k := 0; k < 20; k++ {
		v, err := restored.ReadExact(k)
		if err != nil {
			t.Fatalf("ReadExact(%d): %v", k, err)
		}
		if v != float64(k*10) {
			t.Errorf("key %d restored as %g, want %g", k, v, float64(k*10))
		}
	}
}
