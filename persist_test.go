package apcache

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	s := newStore(t)
	for k, v := range []float64{10, 20, 30} {
		s.Track(k, v)
	}
	// Adapt some state: narrow key 2, widen key 0.
	for i := 0; i < 3; i++ {
		if _, err := s.ReadExact(2); err != nil {
			t.Fatal(err)
		}
	}
	v := 10.0
	for i := 0; i < 4; i++ {
		v += 100
		s.Set(0, v)
	}
	before := s.Stats()

	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	restored, err := Load(&buf, 99)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	after := restored.Stats()
	if after.ValueRefreshes != before.ValueRefreshes || after.QueryRefreshes != before.QueryRefreshes {
		t.Errorf("counters lost: %+v vs %+v", after, before)
	}
	if after.Cost != before.Cost {
		t.Errorf("cost lost: %g vs %g", after.Cost, before.Cost)
	}
	// Cached intervals and exact values survive.
	for k, want := range []float64{v, 20, 30} {
		iv0, ok0 := s.Get(k)
		iv1, ok1 := restored.Get(k)
		if ok0 != ok1 || iv0 != iv1 {
			t.Errorf("key %d interval mismatch: %v/%v vs %v/%v", k, iv0, ok0, iv1, ok1)
		}
		got, err := restored.ReadExact(k)
		if err != nil || got != want {
			t.Errorf("key %d value %g, want %g (err %v)", k, got, want, err)
		}
	}
}

func TestLoadPreservesAdaptedWidths(t *testing.T) {
	s := newStore(t)
	s.Track(0, 0)
	// Narrow the width via reads: 10 -> 10/16.
	for i := 0; i < 4; i++ {
		if _, err := s.ReadExact(0); err != nil {
			t.Fatal(err)
		}
	}
	narrowed, _ := s.Get(0)
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := Load(&buf, 1)
	if err != nil {
		t.Fatal(err)
	}
	// The next refresh must continue from the narrowed width, not restart
	// from the default: a value escape doubles it.
	restored.Set(0, 1e6)
	iv, _ := restored.Get(0)
	if iv.Width() > narrowed.Width()*2+1e-9 {
		t.Errorf("restored width %g did not continue from adapted %g", iv.Width(), narrowed.Width())
	}
}

// TestSaveKeepsEvictedSubscriptions is the regression test for snapshots
// walking the cache instead of the source: a key whose cache entry was
// evicted still has a live subscription and a learned width, and both must
// survive a Save/Load cycle. Before the fix the key vanished from the
// snapshot entirely — the restored store failed reads of it and re-adapted
// its precision from the initial width.
func TestSaveKeepsEvictedSubscriptions(t *testing.T) {
	s, err := NewStore(Options{
		Params:       Params{Cvr: 1, Cqr: 2, Alpha: 1, Lambda0: 0, Lambda1: math.Inf(1)},
		InitialWidth: 10,
		CacheSize:    2,
		Shards:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Track(0, 100)
	s.Track(1, 200)
	// Four escaping updates double key 0's width each time (theta = 1, so
	// every value-initiated refresh grows deterministically): 10 -> 160.
	for _, v := range []float64{300, 500, 700, 900} {
		s.Set(0, v)
	}
	// Admitting key 2 with a full cache evicts the widest entry — key 0.
	s.Track(2, 300)
	if _, ok := s.Get(0); ok {
		t.Fatalf("key 0 still cached; eviction setup broken")
	}

	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	restored, err := LoadOptions(&buf, Options{Seed: 1, Shards: 1, CacheSize: 2})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	// The learned width must have survived the round trip...
	p, ok := restored.shardFor(0).src.PolicyFor(storeCacheID, 0)
	if !ok {
		t.Fatalf("restored store has no subscription for the evicted key")
	}
	if got := p.Width(); got != 160 {
		t.Fatalf("restored width %g, want learned 160", got)
	}
	// ...the evicted key's value must still be readable...
	v, err := restored.ReadExact(0)
	if err != nil {
		t.Fatalf("ReadExact(0) on restored store: %v", err)
	}
	if v != 900 {
		t.Errorf("restored value %g, want 900", v)
	}
	// ...and the read continues adapting from 160 (one query-initiated
	// shrink halves it to 80), not from the initial 10.
	if got := p.Width(); math.Abs(got-80) > 1e-9 {
		t.Errorf("post-read width %g, want 80 (continued from learned 160)", got)
	}
}

// TestLoadRejectsTruncatedSnapshot feeds Load every proper prefix of a
// valid snapshot: each must fail with a clean error, never a panic or a
// silently partial store.
func TestLoadRejectsTruncatedSnapshot(t *testing.T) {
	s := newStore(t)
	for k := 0; k < 8; k++ {
		s.Track(k, float64(k*10))
	}
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for n := 0; n < len(full); n += 7 {
		if _, err := Load(bytes.NewReader(full[:n]), 1); err == nil {
			t.Fatalf("truncated snapshot (%d of %d bytes) accepted", n, len(full))
		}
	}
}

// TestLoadRejectsCorruptNumericState: a snapshot carrying NaN or negative
// widths or an inverted interval must be rejected with an error — the
// controller panics on such widths, so letting them through would crash the
// restoring process.
func TestLoadRejectsCorruptNumericState(t *testing.T) {
	corrupt := func(name string, mutate func(*keySnapshot)) {
		s := newStore(t)
		s.Track(0, 1)
		var buf bytes.Buffer
		if err := s.Save(&buf); err != nil {
			t.Fatal(err)
		}
		var snap snapshot
		if err := decodeSnap(&buf, &snap); err != nil {
			t.Fatal(err)
		}
		mutate(&snap.Keys[0])
		var buf2 bytes.Buffer
		if err := encodeSnap(&buf2, snap); err != nil {
			t.Fatal(err)
		}
		if _, err := Load(&buf2, 1); err == nil {
			t.Errorf("%s: corrupt snapshot accepted", name)
		}
	}
	corrupt("nan width", func(ks *keySnapshot) { ks.Width = math.NaN() })
	corrupt("negative width", func(ks *keySnapshot) { ks.Width = -1 })
	corrupt("inf width", func(ks *keySnapshot) { ks.Width = math.Inf(1) })
	corrupt("inverted interval", func(ks *keySnapshot) { ks.Lo, ks.Hi = 5, -5 })
	corrupt("nan interval", func(ks *keySnapshot) { ks.Lo = math.NaN() })
	corrupt("negative original width", func(ks *keySnapshot) { ks.OrigW = -2 })
}

// TestSaveDeterministicBytes: identical state must serialize to identical
// bytes (keys are emitted sorted), so snapshot diffing and content-addressed
// storage work.
func TestSaveDeterministicBytes(t *testing.T) {
	build := func() *bytes.Buffer {
		s := newStore(t)
		for k := 19; k >= 0; k-- {
			s.Track(k, float64(k))
		}
		var buf bytes.Buffer
		if err := s.Save(&buf); err != nil {
			t.Fatal(err)
		}
		return &buf
	}
	if !bytes.Equal(build().Bytes(), build().Bytes()) {
		t.Errorf("two saves of identical state differ")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("not a snapshot"), 1); err == nil {
		t.Errorf("garbage accepted")
	}
}

func TestLoadRejectsWrongVersion(t *testing.T) {
	s := newStore(t)
	s.Track(0, 1)
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// Re-encode with a bumped version by decoding into the raw struct.
	var snap snapshot
	if err := decodeSnap(&buf, &snap); err != nil {
		t.Fatal(err)
	}
	snap.Version = 99
	var buf2 bytes.Buffer
	if err := encodeSnap(&buf2, snap); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(&buf2, 1); err == nil {
		t.Errorf("wrong version accepted")
	}
}

func TestSaveEmptyStore(t *testing.T) {
	s := newStore(t)
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatalf("Save empty: %v", err)
	}
	restored, err := Load(&buf, 1)
	if err != nil {
		t.Fatalf("Load empty: %v", err)
	}
	if _, ok := restored.Get(0); ok {
		t.Errorf("empty restore has entries")
	}
	if math.IsNaN(restored.Stats().Cost) {
		t.Errorf("NaN cost")
	}
}

func TestLoadOptionsControlsShards(t *testing.T) {
	s, err := NewStore(Options{InitialWidth: 10, Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 20; k++ {
		s.Track(k, float64(k*10))
	}
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	restored, err := LoadOptions(&buf, Options{Seed: 7, Shards: 1})
	if err != nil {
		t.Fatalf("LoadOptions: %v", err)
	}
	if got := restored.Shards(); got != 1 {
		t.Fatalf("restored.Shards() = %d, want 1", got)
	}
	// Keys re-hash onto the new layout with state intact.
	for k := 0; k < 20; k++ {
		v, err := restored.ReadExact(k)
		if err != nil {
			t.Fatalf("ReadExact(%d): %v", k, err)
		}
		if v != float64(k*10) {
			t.Errorf("key %d restored as %g, want %g", k, v, float64(k*10))
		}
	}
}

// TestSaveFileLoadFileRoundTrip checks the crash-safe file path end to end:
// state survives, and no temporary file is left behind on success.
func TestSaveFileLoadFileRoundTrip(t *testing.T) {
	s := newStore(t)
	for k, v := range []float64{10, 20, 30} {
		s.Track(k, v)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "state.snap")
	if err := s.SaveFile(path); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}
	restored, err := LoadFile(path, 99)
	if err != nil {
		t.Fatalf("LoadFile: %v", err)
	}
	for k, want := range []float64{10, 20, 30} {
		got, err := restored.ReadExact(k)
		if err != nil || got != want {
			t.Errorf("key %d restored as %g, want %g (err %v)", k, got, want, err)
		}
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 || ents[0].Name() != "state.snap" {
		names := make([]string, 0, len(ents))
		for _, e := range ents {
			names = append(names, e.Name())
		}
		t.Fatalf("directory after SaveFile holds %v, want only state.snap", names)
	}
}

// TestSaveFileSurvivesCrashMidWrite simulates the failure SaveFile exists
// for: a process dies while writing a new snapshot. Because the write goes
// to a temp file and lands via rename, the abandoned partial file must not
// shadow or corrupt the last complete snapshot.
func TestSaveFileSurvivesCrashMidWrite(t *testing.T) {
	s := newStore(t)
	s.Track(0, 42)
	dir := t.TempDir()
	path := filepath.Join(dir, "state.snap")
	if err := s.SaveFile(path); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}

	// A crash mid-write leaves a partial temp sibling — garbage bytes under
	// the same naming scheme SaveFile uses.
	junk := filepath.Join(dir, "state.snap.tmp123456")
	if err := os.WriteFile(junk, []byte("partial snapsh"), 0o644); err != nil {
		t.Fatal(err)
	}

	restored, err := LoadFile(path, 1)
	if err != nil {
		t.Fatalf("LoadFile after simulated crash: %v", err)
	}
	if v, err := restored.ReadExact(0); err != nil || v != 42 {
		t.Fatalf("restored value %g (err %v), want 42", v, err)
	}

	// The next SaveFile of the same path succeeds regardless of the
	// leftover, and a fresh load sees the new state.
	s.Set(0, 43)
	if err := s.SaveFile(path); err != nil {
		t.Fatalf("SaveFile over leftover temp: %v", err)
	}
	restored2, err := LoadFile(path, 1)
	if err != nil {
		t.Fatalf("LoadFile: %v", err)
	}
	if v, err := restored2.ReadExact(0); err != nil || v != 43 {
		t.Fatalf("re-saved value %g (err %v), want 43", v, err)
	}
}

// TestLoadFileRejectsTruncatedFile: a snapshot cut off mid-byte-stream (the
// torn write SaveFile's rename discipline prevents, forced here by hand)
// must fail loudly, not yield a partial store.
func TestLoadFileRejectsTruncatedFile(t *testing.T) {
	s := newStore(t)
	for k := 0; k < 8; k++ {
		s.Track(k, float64(k))
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "state.snap")
	if err := s.SaveFile(path); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(path, 1); err == nil {
		t.Fatalf("LoadFile accepted a truncated snapshot")
	}
}

// TestLoadFileMissing: loading a path that does not exist is a plain error.
func TestLoadFileMissing(t *testing.T) {
	if _, err := LoadFile(filepath.Join(t.TempDir(), "absent.snap"), 1); err == nil {
		t.Fatalf("LoadFile of a missing path succeeded")
	}
}
