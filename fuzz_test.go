package apcache

// FuzzStoreInvariant drives a Store with a random sequence of updates,
// reads, and bounded-aggregate queries decoded from fuzz input, checking the
// paper's safety properties after every operation: cached intervals always
// contain the exact value, widths are never negative or NaN, and query
// answers both meet their precision constraint and contain the true
// aggregate computed from a mirror of the exact values.

import (
	"encoding/binary"
	"math"
	"os"
	"path/filepath"
	"testing"

	"apcache/internal/wal"
)

// fuzzValue decodes a finite float64 in a bounded range from 2 bytes.
func fuzzValue(b []byte) float64 {
	return float64(int16(binary.LittleEndian.Uint16(b)))
}

func FuzzStoreInvariant(f *testing.F) {
	f.Add(int64(1), uint8(4), []byte{0, 0, 10, 1, 1, 200, 2, 2, 0, 3, 3, 0, 4, 0, 5, 5})
	f.Add(int64(42), uint8(1), []byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13})
	f.Add(int64(7), uint8(64), []byte{8, 255, 16, 128, 24, 0, 32, 64, 40, 32, 48, 16})
	f.Fuzz(func(t *testing.T, seed int64, shards uint8, ops []byte) {
		s, err := NewStore(Options{
			InitialWidth: 8,
			Seed:         seed,
			Shards:       int(shards),
			CacheSize:    32, // small enough that evictions and rejects occur
		})
		if err != nil {
			t.Fatal(err)
		}
		exact := map[int]float64{} // mirror of the exact values
		const keys = 16

		for len(ops) >= 4 {
			op, key := ops[0]%5, int(ops[1]%keys)
			val := fuzzValue(ops[2:4])
			ops = ops[4:]
			switch op {
			case 0: // track
				s.Track(key, val)
				exact[key] = val
			case 1: // update
				if _, ok := exact[key]; !ok {
					s.Track(key, val)
				} else {
					s.Set(key, val)
				}
				exact[key] = val
			case 2: // exact read
				if _, ok := exact[key]; !ok {
					continue
				}
				got, err := s.ReadExact(key)
				if err != nil {
					t.Fatalf("ReadExact(%d): %v", key, err)
				}
				if got != exact[key] {
					t.Fatalf("ReadExact(%d) = %g, want %g", key, got, exact[key])
				}
			case 3: // approximate read
				iv, ok := s.Get(key)
				if !ok {
					continue
				}
				if iv.Width() < 0 || math.IsNaN(iv.Width()) {
					t.Fatalf("key %d: bad width %g in %v", key, iv.Width(), iv)
				}
				if v, tracked := exact[key]; tracked && !iv.Valid(v) {
					t.Fatalf("key %d: interval %v does not contain exact value %g", key, iv, v)
				}
			case 4: // bounded SUM query over every tracked key
				if len(exact) == 0 {
					continue
				}
				qkeys := make([]int, 0, len(exact))
				truth := 0.0
				for k, v := range exact {
					qkeys = append(qkeys, k)
					truth += v
				}
				delta := math.Abs(val) // precision constraint from fuzz input
				ans, err := s.Do(Query{Kind: Sum, Keys: qkeys, Delta: delta})
				if err != nil {
					t.Fatalf("Do: %v", err)
				}
				if w := ans.Result.Width(); w > delta+1e-9 || w < 0 || math.IsNaN(w) {
					t.Fatalf("answer width %g violates delta %g", w, delta)
				}
				if !ans.Result.Valid(truth) {
					t.Fatalf("answer %v does not contain true sum %g", ans.Result, truth)
				}
			}
			// Global invariant sweep: every cached interval contains its
			// exact value (Get does not perturb state).
			for k, v := range exact {
				if iv, ok := s.Get(k); ok && !iv.Valid(v) {
					t.Fatalf("key %d: interval %v lost exact value %g", k, iv, v)
				}
			}
		}
		st := s.Stats()
		if st.Cost < 0 || math.IsNaN(st.Cost) {
			t.Fatalf("bad cumulative cost %g", st.Cost)
		}
	})
}

// FuzzWALReplay builds a valid write-ahead log from a fuzz-decoded workload,
// flips arbitrary bytes in the log files, and requires recovery to (1) never
// panic, (2) never load semantically invalid state — the same width/interval
// validation the snapshot loader enforces — and (3) recover exactly the
// surviving record prefix: the state OpenDurable serves must match what the
// surviving records imply, no more (no phantom writes) and no less (no
// dropped acked prefix).
func FuzzWALReplay(f *testing.F) {
	f.Add(uint16(0), byte(0xff), uint16(9), byte(0x01), []byte{0, 0, 10, 1, 1, 1, 200, 2, 2, 2, 0, 3})
	f.Add(uint16(50), byte(0x80), uint16(51), byte(0x80), []byte{1, 0, 7, 7, 1, 1, 8, 8, 2, 2, 0, 0, 1, 3, 9, 9})
	f.Add(uint16(4), byte(0x40), uint16(1000), byte(0x20), []byte{0, 5, 1, 2, 1, 5, 3, 4, 2, 5, 0, 0})
	f.Fuzz(func(t *testing.T, off1 uint16, val1 byte, off2 uint16, val2 byte, ops []byte) {
		const keys = 8
		dir := t.TempDir()
		opts := Options{Seed: 3, Shards: 2, InitialWidth: 2,
			Durability: &DurabilityOptions{Fsync: FsyncAlways}}
		s, err := OpenDurable(dir, opts)
		if err != nil {
			t.Fatal(err)
		}
		if len(ops) > 400 {
			ops = ops[:400]
		}
		tracked := map[int]bool{}
		for len(ops) >= 4 {
			op, key := ops[0]%3, int(ops[1]%keys)
			val := fuzzValue(ops[2:4])
			ops = ops[4:]
			switch op {
			case 0, 1:
				s.Track(key, val)
				tracked[key] = true
			case 2:
				if tracked[key] {
					s.ReadExact(key)
				}
			}
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}

		// Flip two bytes somewhere in the shard logs.
		var logs []string
		names, _ := os.ReadDir(dir)
		total := 0
		sizes := make([]int, 0, 2)
		for _, e := range names {
			if wal.IsLogName(e.Name()) {
				info, _ := e.Info()
				logs = append(logs, filepath.Join(dir, e.Name()))
				sizes = append(sizes, int(info.Size()))
				total += int(info.Size())
			}
		}
		mutate := func(off int, val byte) {
			if total == 0 || val == 0 {
				return
			}
			off %= total
			for i, path := range logs {
				if off < sizes[i] {
					data, err := os.ReadFile(path)
					if err != nil {
						t.Fatal(err)
					}
					data[off] ^= val
					if err := os.WriteFile(path, data, 0o644); err != nil {
						t.Fatal(err)
					}
					return
				}
				off -= sizes[i]
			}
		}
		mutate(int(off1), val1)
		mutate(int(off2), val2)

		// Oracle: scan the mutated files (this truncates torn tails exactly
		// as recovery will) and fold the surviving records over the newest
		// snapshot with the production overlay. The recovered store must
		// match this expectation key for key.
		res, err := wal.ScanDir(wal.OSFS, dir)
		if err != nil {
			t.Fatalf("scan of mutated log: %v", err)
		}
		base, _, err := newestSnapshot(wal.OSFS, dir)
		if err != nil {
			t.Fatalf("snapshot untouched by mutation but unreadable: %v", err)
		}
		if base == nil {
			t.Fatal("open-time snapshot missing")
		}
		overlayRecords(base, res.Records)

		s2, err := OpenDurable(dir, opts)
		if err != nil {
			t.Fatalf("recovery rejected a mutated log (must truncate instead): %v", err)
		}
		defer s2.Close()
		expected := map[int]keySnapshot{}
		for _, ks := range base.Keys {
			expected[ks.Key] = ks
		}
		for k := 0; k < keys; k++ {
			ks, ok := expected[k]
			w, haveW := s2.Width(k)
			if haveW != ok {
				t.Fatalf("key %d: recovered tracked=%v, surviving records say %v", k, haveW, ok)
			}
			if !ok {
				continue
			}
			if math.IsNaN(w) || math.IsInf(w, 0) || w < 0 {
				t.Fatalf("key %d: invalid recovered width %g", k, w)
			}
			wantW := ks.Width
			if wantW == 0 {
				wantW = opts.InitialWidth // no surviving width record: fresh controller
			}
			if w != wantW {
				t.Fatalf("key %d: recovered width %g, want %g", k, w, wantW)
			}
			if iv, cached := s2.Get(k); cached && !iv.Valid(ks.Value) {
				t.Fatalf("key %d: recovered interval %v excludes recovered value %g", k, iv, ks.Value)
			}
			got, err := s2.ReadExact(k)
			if err != nil {
				t.Fatalf("key %d: recovered store lost the value: %v", k, err)
			}
			if got != ks.Value {
				t.Fatalf("key %d: recovered value %g, want %g", k, got, ks.Value)
			}
		}
	})
}
