package apcache

// FuzzStoreInvariant drives a Store with a random sequence of updates,
// reads, and bounded-aggregate queries decoded from fuzz input, checking the
// paper's safety properties after every operation: cached intervals always
// contain the exact value, widths are never negative or NaN, and query
// answers both meet their precision constraint and contain the true
// aggregate computed from a mirror of the exact values.

import (
	"encoding/binary"
	"math"
	"testing"
)

// fuzzValue decodes a finite float64 in a bounded range from 2 bytes.
func fuzzValue(b []byte) float64 {
	return float64(int16(binary.LittleEndian.Uint16(b)))
}

func FuzzStoreInvariant(f *testing.F) {
	f.Add(int64(1), uint8(4), []byte{0, 0, 10, 1, 1, 200, 2, 2, 0, 3, 3, 0, 4, 0, 5, 5})
	f.Add(int64(42), uint8(1), []byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13})
	f.Add(int64(7), uint8(64), []byte{8, 255, 16, 128, 24, 0, 32, 64, 40, 32, 48, 16})
	f.Fuzz(func(t *testing.T, seed int64, shards uint8, ops []byte) {
		s, err := NewStore(Options{
			InitialWidth: 8,
			Seed:         seed,
			Shards:       int(shards),
			CacheSize:    32, // small enough that evictions and rejects occur
		})
		if err != nil {
			t.Fatal(err)
		}
		exact := map[int]float64{} // mirror of the exact values
		const keys = 16

		for len(ops) >= 4 {
			op, key := ops[0]%5, int(ops[1]%keys)
			val := fuzzValue(ops[2:4])
			ops = ops[4:]
			switch op {
			case 0: // track
				s.Track(key, val)
				exact[key] = val
			case 1: // update
				if _, ok := exact[key]; !ok {
					s.Track(key, val)
				} else {
					s.Set(key, val)
				}
				exact[key] = val
			case 2: // exact read
				if _, ok := exact[key]; !ok {
					continue
				}
				got, err := s.ReadExact(key)
				if err != nil {
					t.Fatalf("ReadExact(%d): %v", key, err)
				}
				if got != exact[key] {
					t.Fatalf("ReadExact(%d) = %g, want %g", key, got, exact[key])
				}
			case 3: // approximate read
				iv, ok := s.Get(key)
				if !ok {
					continue
				}
				if iv.Width() < 0 || math.IsNaN(iv.Width()) {
					t.Fatalf("key %d: bad width %g in %v", key, iv.Width(), iv)
				}
				if v, tracked := exact[key]; tracked && !iv.Valid(v) {
					t.Fatalf("key %d: interval %v does not contain exact value %g", key, iv, v)
				}
			case 4: // bounded SUM query over every tracked key
				if len(exact) == 0 {
					continue
				}
				qkeys := make([]int, 0, len(exact))
				truth := 0.0
				for k, v := range exact {
					qkeys = append(qkeys, k)
					truth += v
				}
				delta := math.Abs(val) // precision constraint from fuzz input
				ans, err := s.Do(Query{Kind: Sum, Keys: qkeys, Delta: delta})
				if err != nil {
					t.Fatalf("Do: %v", err)
				}
				if w := ans.Result.Width(); w > delta+1e-9 || w < 0 || math.IsNaN(w) {
					t.Fatalf("answer width %g violates delta %g", w, delta)
				}
				if !ans.Result.Valid(truth) {
					t.Fatalf("answer %v does not contain true sum %g", ans.Result, truth)
				}
			}
			// Global invariant sweep: every cached interval contains its
			// exact value (Get does not perturb state).
			for k, v := range exact {
				if iv, ok := s.Get(k); ok && !iv.Valid(v) {
					t.Fatalf("key %d: interval %v lost exact value %g", k, iv, v)
				}
			}
		}
		st := s.Stats()
		if st.Cost < 0 || math.IsNaN(st.Cost) {
			t.Fatalf("bad cumulative cost %g", st.Cost)
		}
	})
}
